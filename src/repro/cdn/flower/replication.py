"""Directory replication and warm takeover (robustness extension).

The paper's replacement protocol (section 5.2) restarts a crashed
directory slot from an **empty** member view and index: the replacement
only re-learns its petal through keepalives and pushes, leaving a cold
window during which ``d(ws, loc)`` misses on content its petal actually
holds.  This module closes that window with the standard cure from the
replica-management literature: each directory peer asynchronously
replicates a **versioned snapshot** of its (member-view, directory-index)
state so the replacement race is won by -- or seeded from -- a warm
replica instead of an empty view.

Replication targets (``ReplicationParams.k`` + 1 of them):

- the directory's ``k`` **D-ring successors** -- thanks to the key
  management service these are the next directory instances/websites on
  the ring, i.e. exactly the peers a post-heal replacement can reach; and
- one **member heir** inside the petal (the member with the smallest
  address -- deterministic), so a replica survives *inside* a partition
  that cuts the petal's locality off from the rest of the ring.

Wire protocol (all kinds gated behind ``replication_k > 0``; a run with
replication off sends none of these and stays bit-identical to the
non-replicated build):

``flower.replica_sync``
    Periodic (piggybacked on the keepalive/stabilization cadence) state
    transfer from a directory to one target.  Normally a **delta** against
    the version the target last acknowledged; every
    ``replication_anti_entropy_rounds``-th round it is a **full snapshot**
    (anti-entropy: heals any divergence deltas cannot express).  The
    receiver stores it in its :class:`ReplicaStore` and acknowledges the
    new version; version-behind syncs are rejected (``"stale"``), deltas
    against an unknown base request a full snapshot (``"need_full"``).
``flower.replica_fetch``
    A freshly activated (empty) replacement directory pulls the
    highest-version replica of its position from its new ring successors;
    its own :class:`ReplicaStore` is consulted first (the member heir
    winning the race takes over with zero network round trips).

Versioning: :class:`~repro.cdn.flower.directory.DirectoryRole` carries a
monotonically increasing ``version`` plus a change journal (member ->
version of last change, tombstones for removals).  The journal is pure
state -- maintaining it draws no randomness and emits no events, which is
what keeps replication-off runs on the determinism goldens.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import CDNError
from repro.sim.process import PeriodicProcess
from repro.types import Address, ChordId, ObjectKey


def full_sync_payload(role, origin: Address) -> Dict[str, Any]:
    """A complete, versioned copy of *role*'s replicated state."""
    ages = {c.address: c.age for c in role.members.contacts()}
    entries = [
        (address, age, sorted(role.member_keys.get(address, ())))
        for address, age in ages.items()
    ]
    payload = {
        "position": role.position_id,
        "website": role.website,
        "locality": role.locality,
        "instance": role.instance,
        "origin": origin,
        "version": role.version,
        "full": True,
        "entries": entries,
        "removed": [],
    }
    if role.search_space is not None:
        # Section 5.4: the keyword posting lists ride the same channel.
        # A full sync carries the complete set (replace-all semantics).
        payload["postings"] = [
            (keyword, sorted(keys))
            for keyword, keys in sorted(role.postings.items())
        ]
        payload["postings_removed"] = []
    return payload


def delta_sync_payload(role, origin: Address, base_version: int) -> Dict[str, Any]:
    """Changes of *role* since *base_version* (exclusive)."""
    ages = {c.address: c.age for c in role.members.contacts()}
    entries = [
        (address, ages.get(address, 0), sorted(role.member_keys.get(address, ())))
        for address in role.changed_since(base_version)
    ]
    payload = {
        "position": role.position_id,
        "website": role.website,
        "locality": role.locality,
        "instance": role.instance,
        "origin": origin,
        "version": role.version,
        "full": False,
        "base_version": base_version,
        "entries": entries,
        "removed": role.removed_since(base_version),
    }
    if role.search_space is not None:
        # A delta ships each touched keyword's *current* full list
        # (replace-per-keyword semantics) plus tombstones for keywords
        # whose lists emptied -- same shape the member journal uses.
        payload["postings"] = [
            (keyword, sorted(role.postings.get(keyword, ())))
            for keyword in role.postings_changed_since(base_version)
        ]
        payload["postings_removed"] = role.postings_removed_since(base_version)
    return payload


class ReplicaRecord:
    """One stored replica: the versioned state of a remote directory slot."""

    __slots__ = (
        "position",
        "website",
        "locality",
        "instance",
        "origin",
        "version",
        "updated_at",
        "members",
        "member_keys",
        "postings",
    )

    def __init__(self, payload: Dict[str, Any], now: float) -> None:
        self.position: ChordId = payload["position"]
        self.website: int = payload["website"]
        self.locality: int = payload["locality"]
        self.instance: int = payload["instance"]
        self.origin: Address = payload["origin"]
        self.version: int = payload["version"]
        self.updated_at: float = now
        self.members: Dict[Address, int] = {}
        self.member_keys: Dict[Address, List[ObjectKey]] = {}
        #: keyword -> posting list, mirrored from the origin's journal
        #: (empty when the origin runs without a search engine).
        self.postings: Dict[str, Set[ObjectKey]] = {}
        self._apply_entries(payload)

    def _apply_entries(self, payload: Dict[str, Any]) -> None:
        for address, age, keys in payload.get("entries", ()):
            self.members[address] = age
            self.member_keys[address] = [tuple(k) for k in keys]
        for address in payload.get("removed", ()):
            self.members.pop(address, None)
            self.member_keys.pop(address, None)
        for keyword, keys in payload.get("postings", ()):
            self.postings[keyword] = {tuple(k) for k in keys}
        for keyword in payload.get("postings_removed", ()):
            self.postings.pop(keyword, None)

    def apply(self, payload: Dict[str, Any], now: float) -> None:
        """Install a full snapshot or apply a delta on top of this record."""
        if payload.get("full"):
            self.members.clear()
            self.member_keys.clear()
            if "postings" in payload:
                # Only a search-carrying full resets the lists: an origin
                # that attached its engine late must not wipe postings it
                # simply does not ship.
                self.postings.clear()
        self.origin = payload["origin"]
        self.version = payload["version"]
        self.updated_at = now
        self._apply_entries(payload)

    def to_snapshot(self) -> Dict[str, Any]:
        """The :meth:`DirectoryRole.adopt_snapshot`-compatible form."""
        snapshot = {
            "version": self.version,
            "members": [(address, age) for address, age in self.members.items()],
            "member_keys": {
                address: list(keys) for address, keys in self.member_keys.items()
            },
        }
        if self.postings:
            snapshot["postings"] = [
                (keyword, sorted(keys))
                for keyword, keys in sorted(self.postings.items())
            ]
        return snapshot

    def search_matches(self, space, keyword: str, max_results: int) -> List[Tuple]:
        """Answer a scoped keyword search from this replica.

        Providers follow the live engine's rule (smallest indexed
        address); keys whose every holder has been removed from the
        replica are skipped.  When the origin never shipped posting lists
        (it ran before search was enabled) the lists are derived from the
        replicated member keys via *space* -- same answer, more hashing.
        """
        keys = self.postings.get(keyword)
        if keys is None and not self.postings:
            keys = {
                key
                for held in self.member_keys.values()
                for key in held
                if space.matches(key, keyword)
            }
        matches: List[Tuple] = []
        for key in sorted(keys or ()):
            provider = min(
                (
                    address
                    for address, held in self.member_keys.items()
                    if key in held
                ),
                default=None,
            )
            if provider is not None:
                matches.append((key, provider))
                if len(matches) >= max_results:
                    break
        return matches

    def summary(self, now: float) -> Dict[str, Any]:
        """Wire form returned to a ``flower.replica_fetch``."""
        return {
            "version": self.version,
            "origin": self.origin,
            "updated_at": self.updated_at,
            "staleness_ms": now - self.updated_at,
            "snapshot": self.to_snapshot(),
        }


class ReplicaStore:
    """Per-peer storage of replicas received via ``flower.replica_sync``."""

    def __init__(self) -> None:
        self._records: Dict[ChordId, ReplicaRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def positions(self) -> List[ChordId]:
        return list(self._records)

    def records(self) -> List[ReplicaRecord]:
        return list(self._records.values())

    def get(self, position: ChordId) -> Optional[ReplicaRecord]:
        return self._records.get(position)

    def drop(self, position: ChordId) -> None:
        self._records.pop(position, None)

    def clear(self) -> None:
        self._records.clear()

    def accept(self, payload: Dict[str, Any], now: float) -> Dict[str, Any]:
        """Apply one sync message; return the acknowledgement payload.

        Acceptance rules (the versioning contract of section 5.3):

        - a **full** snapshot replaces the record unless it is *version
          behind* what we already hold -- a stale origin (e.g. a demoted
          split-brain loser) is told so and must not be acknowledged;
        - a **delta** applies only on top of exactly ``base_version``;
          anything else (no record, a gap, a version regression) requests
          a full snapshot instead of guessing.
        """
        position = payload["position"]
        record = self._records.get(position)
        if payload.get("full"):
            if record is not None and payload["version"] < record.version:
                return {"status": "stale", "have": record.version}
            if record is None:
                self._records[position] = ReplicaRecord(payload, now)
                record = self._records[position]
                record.version = payload["version"]
            else:
                record.apply(payload, now)
            return {"status": "ok", "version": record.version}
        if record is None or record.version != payload.get("base_version"):
            return {
                "status": "need_full",
                "have": record.version if record is not None else -1,
            }
        if payload["version"] < record.version:
            return {"status": "stale", "have": record.version}
        record.apply(payload, now)
        return {"status": "ok", "version": record.version}

    def best_for(self, position: ChordId) -> Optional[ReplicaRecord]:
        """Alias of :meth:`get` kept for call-site readability."""
        return self._records.get(position)


class DirectoryReplicator:
    """Drives the periodic replica-sync of one directory role.

    Attached by :class:`~repro.cdn.flower.peer.FlowerPeer` when it
    activates a directory role with ``params.replication_k > 0``.  One
    sync tick runs per keepalive period (the paper couples directory
    maintenance to that cadence); every ``anti_entropy_rounds``-th tick
    ships full snapshots instead of deltas.

    Determinism note: the tick process draws its initial delay and jitter
    from the owning peer's private stream -- replication-enabled runs have
    their own deterministic schedule, and replication-off runs never
    construct this object.
    """

    def __init__(self, peer, role) -> None:
        params = peer.system.params
        if params.replication_k < 1:
            raise CDNError("DirectoryReplicator needs replication_k >= 1")
        self.peer = peer
        self.role = role
        self.k = params.replication_k
        self.anti_entropy_rounds = params.replication_anti_entropy_rounds
        #: target address -> last version it acknowledged.
        self.acked: Dict[Address, int] = {}
        self.rounds = 0
        self.stats = {"syncs": 0, "fulls": 0, "deltas": 0, "rejected": 0}
        period = params.keepalive_period_ms
        self._process: Optional[PeriodicProcess] = PeriodicProcess(
            peer.sim,
            period,
            self._sync_tick,
            initial_delay=peer.rng.uniform(0.25 * period, 0.75 * period),
            jitter=0.05,
            rng=peer.rng,
        )

    # ------------------------------------------------------------- lifecycle
    @property
    def active(self) -> bool:
        return self._process is not None

    def stop(self) -> None:
        if self._process is not None:
            self._process.cancel()
            self._process = None

    # --------------------------------------------------------------- targets
    def member_heir(self) -> Optional[Address]:
        """The deterministic in-petal replica target: the member with the
        smallest address.  It survives partitions that cut the petal's
        locality off from the rest of the D-ring."""
        addresses = self.role.members.addresses()
        return min(addresses) if addresses else None

    def targets(self) -> List[Address]:
        """Member heir + up to ``k`` distinct ring successors."""
        out: List[Address] = []
        seen: Set[Address] = {self.peer.address}
        heir = self.member_heir()
        if heir is not None:
            out.append(heir)
            seen.add(heir)
        chord = self.role.chord
        successors: Tuple = tuple(chord.successors) if chord is not None else ()
        ring = 0
        for ref in successors:
            if ring >= self.k:
                break
            if ref.address in seen:
                continue
            seen.add(ref.address)
            out.append(ref.address)
            ring += 1
        return out

    # ------------------------------------------------------------------ sync
    def _sync_tick(self) -> None:
        peer = self.peer
        if not peer.alive or peer.directory is not self.role:
            return
        # Lazy search attach: tests (and late-configured runs) install the
        # engine after seed directories exist; make sure this role's
        # posting lists are live before they are serialized below.
        peer._attach_search(self.role)
        self.rounds += 1
        force_full = self.rounds % self.anti_entropy_rounds == 0
        for target in self.targets():
            self.sync_target(target, force_full=force_full)

    def sync_target(self, target: Address, force_full: bool = False) -> None:
        """Send one sync (delta when possible) to *target*."""
        role = self.role
        peer = self.peer
        base = self.acked.get(target)
        if base is not None and not force_full and base == role.version:
            return  # nothing new since the last acknowledgement
        if base is None or force_full:
            payload = full_sync_payload(role, peer.address)
            self.stats["fulls"] += 1
        else:
            payload = delta_sync_payload(role, peer.address, base)
            self.stats["deltas"] += 1
        self.stats["syncs"] += 1
        params = peer.system.params
        if params.redirect_hints and params.directory_queue_limit > 0:
            # Queue-aware redirect hints: the periodic sync doubles as the
            # per-petal load-vector gossip -- replica holders, the member
            # heir and (via the ring successors) sibling instances all
            # learn this instance's current admission-queue depth.  Only
            # shipped when hints are on, so hint-free runs stay
            # byte-identical on this channel.
            payload["load_vector"] = role.load_vector(
                peer.sim.now, params.directory_service_ms
            )

        def on_reply(reply: Dict[str, Any], target=target) -> None:
            if peer.directory is not role:
                return
            status = reply.get("status")
            if status == "ok":
                self.acked[target] = reply["version"]
            elif status == "need_full":
                # Target lost (or never had) our base: next tick goes full.
                self.acked.pop(target, None)
            elif status == "conflict":
                # The target *is itself* a live directory of our slot --
                # split brain discovered through replication traffic.
                self.acked.pop(target, None)
                peer._resolve_slot_conflict(
                    role, reply["holder"], bool(reply.get("registered"))
                )
            elif status == "off":
                self.acked.pop(target, None)
            else:  # "stale": the target holds a *newer* replica than our
                # state -- we are a version-behind origin (split-brain
                # loser racing its own demotion).  Stop acknowledging;
                # the slot-reconcile path owns the resolution.
                self.stats["rejected"] += 1
                self.acked.pop(target, None)
                if peer.sim.tracing("flower.replica_rejected"):
                    peer.sim.emit(
                        "flower.replica_rejected",
                        origin=peer.address,
                        target=target,
                        position=role.position_id,
                        have=reply.get("have"),
                        version=role.version,
                    )

        def on_timeout(target=target) -> None:
            self.acked.pop(target, None)

        peer.rpc(target, "flower.replica_sync", payload, on_reply, on_timeout)
