"""Flower-CDN: a locality- and interest-aware hybrid P2P CDN (paper §3-5).

Architecture (Figure 1): gossip-based *petals* -- one per (website,
locality) couple -- linked by *D-ring*, a Chord overlay whose members are
the petals' directory peers, placed at identifiers assigned by the novel
key-management service of :mod:`repro.cdn.flower.dring`.

Module map:

- :mod:`repro.cdn.flower.dring` -- (website, locality, instance) -> D-ring
  identifier assignment;
- :mod:`repro.cdn.flower.directory` -- the directory role: directory-index,
  member view, load accounting, PetalUp instance bookkeeping;
- :mod:`repro.cdn.flower.peer` -- :class:`FlowerPeer`: content-peer
  behaviour (gossip, summaries, push, keepalive, dir-info), the query
  protocols for new clients and content peers, and the failure-recovery
  protocols of section 5;
- :mod:`repro.cdn.flower.system` -- :class:`FlowerSystem`: initial
  population, churn hooks, D-ring bootstrap.

PetalUp-CDN (section 4) is this same code with a finite
``directory_load_limit`` and ``max_instances > 1``; see
:mod:`repro.cdn.petalup`.
"""

from repro.cdn.flower.dring import DRingKeyService
from repro.cdn.flower.peer import DirInfo, FlowerPeer
from repro.cdn.flower.search import KeywordSearchEngine, KeywordSpace
from repro.cdn.flower.system import FlowerSystem

__all__ = [
    "DRingKeyService",
    "FlowerPeer",
    "DirInfo",
    "FlowerSystem",
    "KeywordSpace",
    "KeywordSearchEngine",
]
