"""Typed system-statistics facade (one entry point, one version).

Historically each extension grew its own reporting method on
:class:`~repro.cdn.flower.system.FlowerSystem` -- ``overload_stats()``,
``replication_stats()``, and the swarm counters via
:meth:`~repro.cdn.base.CdnSystem.swarm_stats` -- each returning a loosely
shaped dict.  This module unifies them: :func:`collect_system_stats`
gathers everything into frozen dataclasses under a single versioned
:class:`SystemStats`, reached through ``system.stats()``.  The old methods
survive as deprecated delegates whose dict shapes are preserved by the
``to_dict()`` methods here, so existing reports and benchmarks keep
parsing.

``STATS_VERSION`` bumps whenever a field is added, renamed, or changes
meaning -- consumers that persist snapshots (the chaos bundles, the bench
JSON artifacts) can tell apart shapes without guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.types import Address

#: Version of the :class:`SystemStats` shape (see module docstring).
STATS_VERSION = 1


@dataclass(frozen=True)
class OverloadStats:
    """Admission-queue, shedding, hint, and rebalancing activity.

    All-zero / empty when the overload extension is off (no queue limit,
    no shedding, no open-loop traffic).  The per-directory and per-peer
    value lists feed the Gini computations of the cloud-heavy benchmark;
    ``instances`` maps ``"website:locality"`` to the number of live
    directory instances serving that petal, and the ``*_detail`` maps are
    keyed snapshots callers can diff for per-window shares.
    """

    queries_shed: int = 0
    members_shed: int = 0
    hint_hops: int = 0
    hint_hits: int = 0
    hint_stale: int = 0
    rebalance_spills: int = 0
    rebalance_adoptions: int = 0
    rebalance_kb: float = 0.0
    directories: int = 0
    peak_queue_depth: int = 0
    directory_loads: List[int] = field(default_factory=list)
    directory_queries: List[int] = field(default_factory=list)
    directory_sheds: List[int] = field(default_factory=list)
    directory_detail: Dict[Address, Dict[str, Any]] = field(default_factory=dict)
    content_fetches: List[int] = field(default_factory=list)
    content_detail: Dict[Address, Dict[str, Any]] = field(default_factory=dict)
    instances: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "queries_shed": self.queries_shed,
            "members_shed": self.members_shed,
            "hint_hops": self.hint_hops,
            "hint_hits": self.hint_hits,
            "hint_stale": self.hint_stale,
            "rebalance_spills": self.rebalance_spills,
            "rebalance_adoptions": self.rebalance_adoptions,
            "rebalance_kb": self.rebalance_kb,
            "directories": self.directories,
            "peak_queue_depth": self.peak_queue_depth,
            "directory_loads": list(self.directory_loads),
            "directory_queries": list(self.directory_queries),
            "directory_sheds": list(self.directory_sheds),
            "directory_detail": dict(self.directory_detail),
            "content_fetches": list(self.content_fetches),
            "content_detail": dict(self.content_detail),
            "instances": dict(self.instances),
        }


@dataclass(frozen=True)
class ReplicationStats:
    """Directory-state and search-index replication activity.

    All-zero when ``replication_k == 0`` (nothing runs).  Used by the
    recovery benchmarks and the chaos report's context block.
    """

    syncs: int = 0
    fulls: int = 0
    deltas: int = 0
    rejected: int = 0
    replicas_stored: int = 0
    replica_holders: int = 0
    provisional_directories: int = 0
    search_directories: int = 0
    search_postings: int = 0
    search_replicas: int = 0
    search_replica_staleness_ms: float = 0.0
    search_index: Dict[Any, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "syncs": self.syncs,
            "fulls": self.fulls,
            "deltas": self.deltas,
            "rejected": self.rejected,
            "replicas_stored": self.replicas_stored,
            "replica_holders": self.replica_holders,
            "provisional_directories": self.provisional_directories,
            "search_directories": self.search_directories,
            "search_postings": self.search_postings,
            "search_replicas": self.search_replicas,
            "search_replica_staleness_ms": self.search_replica_staleness_ms,
            "search_index": dict(self.search_index),
        }


@dataclass(frozen=True)
class SwarmStats:
    """Chunked-transfer accounting (all zeros while swarming is off).

    ``bandwidth`` carries the bandwidth model's extra counters verbatim
    when one is installed; ``to_dict()`` merges them into the flat shape
    the pre-facade :meth:`~repro.cdn.base.CdnSystem.swarm_stats` returned.
    """

    transfers_started: int = 0
    transfers_completed: int = 0
    transfers_degraded: int = 0
    transfers_failed: int = 0
    restarts: int = 0
    chunk_retries: int = 0
    p2p_bytes: float = 0.0
    origin_bytes: float = 0.0
    offload_fraction: float = 0.0
    bandwidth: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "transfers_started": self.transfers_started,
            "transfers_completed": self.transfers_completed,
            "transfers_degraded": self.transfers_degraded,
            "transfers_failed": self.transfers_failed,
            "restarts": self.restarts,
            "chunk_retries": self.chunk_retries,
            "p2p_bytes": self.p2p_bytes,
            "origin_bytes": self.origin_bytes,
            "offload_fraction": self.offload_fraction,
        }
        if self.bandwidth is not None:
            stats.update(self.bandwidth)
        return stats


@dataclass(frozen=True)
class SystemStats:
    """Everything a report needs about one system, in one snapshot."""

    overload: OverloadStats
    replication: ReplicationStats
    swarm: SwarmStats
    version: int = STATS_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "overload": self.overload.to_dict(),
            "replication": self.replication.to_dict(),
            "swarm": self.swarm.to_dict(),
        }


# ---------------------------------------------------------------- collectors
def collect_overload_stats(system) -> OverloadStats:
    """Gather the overload snapshot from a live :class:`FlowerSystem`."""
    directories = 0
    peak_queue_depth = 0
    directory_loads: List[int] = []
    directory_queries: List[int] = []
    directory_sheds: List[int] = []
    directory_detail: Dict[Address, Dict[str, Any]] = {}
    instances: Dict[str, int] = {}
    for (website, locality), slot in sorted(system._directory_registry.items()):
        live = 0
        for address in sorted(slot):
            peer = slot[address]
            d = peer.directory
            if not peer.alive or d is None:
                continue
            live += 1
            directories += 1
            directory_loads.append(d.load)
            directory_queries.append(d.queries_handled)
            directory_sheds.append(d.queries_shed)
            directory_detail[peer.address] = {
                "website": website,
                "locality": locality,
                "load": d.load,
                "queries": d.queries_handled,
                "sheds": d.queries_shed,
                "keys_rebalanced": d.keys_rebalanced,
            }
            if d.peak_queue_depth > peak_queue_depth:
                peak_queue_depth = d.peak_queue_depth
        if live:
            instances[f"{website}:{locality}"] = live
    content_fetches: List[int] = []
    content_detail: Dict[Address, Dict[str, Any]] = {}
    for peer in system.peers.values():
        if peer.alive and peer.directory is None:
            content_fetches.append(peer.fetches_served)
            content_detail[peer.address] = {
                "website": peer.website,
                "locality": peer.locality,
                "fetches": peer.fetches_served,
            }
    return OverloadStats(
        queries_shed=system.shed_queries,
        members_shed=system.members_shed,
        hint_hops=system.hint_hops,
        hint_hits=system.hint_hits,
        hint_stale=system.hint_stale,
        rebalance_spills=system.rebalance_spills,
        rebalance_adoptions=system.rebalance_adoptions,
        rebalance_kb=system.rebalance_kb,
        directories=directories,
        peak_queue_depth=peak_queue_depth,
        directory_loads=directory_loads,
        directory_queries=directory_queries,
        directory_sheds=directory_sheds,
        directory_detail=directory_detail,
        content_fetches=content_fetches,
        content_detail=content_detail,
        instances=instances,
    )


def collect_replication_stats(system) -> ReplicationStats:
    """Gather the replication snapshot from a live :class:`FlowerSystem`."""
    counters = {"syncs": 0, "fulls": 0, "deltas": 0, "rejected": 0}
    replicas_stored = 0
    replica_holders = 0
    provisional_directories = 0
    search_directories = 0
    search_postings = 0
    search_replicas = 0
    search_replica_staleness_ms = 0.0
    search_index: Dict[Any, Dict[str, Any]] = {}
    now = system.sim.now
    for peer in system.peers.values():
        if not peer.alive:
            continue
        stored = len(peer.replica_store)
        if stored:
            replicas_stored += stored
            replica_holders += 1
        for record in peer.replica_store.records():
            if record.postings:
                search_replicas += 1
                staleness = now - record.updated_at
                if staleness > search_replica_staleness_ms:
                    search_replica_staleness_ms = staleness
        d = peer.directory
        if d is not None:
            if d.provisional:
                provisional_directories += 1
            if d.search_space is not None:
                search_directories += 1
                search_postings += len(d.postings)
                search_index[d.position_id] = {
                    "version": d.search_version,
                    "postings": len(d.postings),
                    "provisional": d.provisional,
                }
        replicator = peer._replicator
        if replicator is not None:
            for key in counters:
                counters[key] += replicator.stats[key]
    return ReplicationStats(
        syncs=counters["syncs"],
        fulls=counters["fulls"],
        deltas=counters["deltas"],
        rejected=counters["rejected"],
        replicas_stored=replicas_stored,
        replica_holders=replica_holders,
        provisional_directories=provisional_directories,
        search_directories=search_directories,
        search_postings=search_postings,
        search_replicas=search_replicas,
        search_replica_staleness_ms=search_replica_staleness_ms,
        search_index=search_index,
    )


def collect_swarm_stats(system) -> SwarmStats:
    """Gather the swarm snapshot from a live :class:`CdnSystem`."""
    total_bytes = system.swarm_p2p_bytes + system.swarm_origin_bytes
    offload = system.swarm_p2p_bytes / total_bytes if total_bytes else 0.0
    bandwidth = system.network.bandwidth
    return SwarmStats(
        transfers_started=system.swarm_started,
        transfers_completed=system.swarm_completed,
        transfers_degraded=system.swarm_degraded,
        transfers_failed=system.swarm_failed,
        restarts=system.swarm_restarts,
        chunk_retries=system.swarm_chunk_retries,
        p2p_bytes=system.swarm_p2p_bytes,
        origin_bytes=system.swarm_origin_bytes,
        offload_fraction=offload,
        bandwidth=bandwidth.stats() if bandwidth is not None else None,
    )


def collect_system_stats(system) -> SystemStats:
    """The single entry point behind :meth:`FlowerSystem.stats`."""
    return SystemStats(
        overload=collect_overload_stats(system),
        replication=collect_replication_stats(system),
        swarm=collect_swarm_stats(system),
    )
