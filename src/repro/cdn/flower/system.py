"""Flower-CDN system orchestration.

Owns the D-ring (one Chord overlay whose members are directory peers), the
key-management service, and the peer population.  The experiment runner
drives it through the churn callbacks of :class:`~repro.cdn.base.CdnSystem`.

Initial population (paper section 6.1): "We start with a population of
k x |W| = 600 directory peers which have limited uptimes and form the
initial D-ring (i.e., one directory peer per couple (website, locality))."
:meth:`FlowerSystem.setup_initial_population` creates exactly that: one
peer per (website, locality), placed in the matching locality, given the
directory role, and wired into a warm-started (already stabilized) D-ring.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

from repro.cdn.base import BasePeer, CdnSystem, ProtocolParams
from repro.cdn.flower.directory import DirectoryRole
from repro.cdn.flower.dring import DRingKeyService
from repro.cdn.flower.peer import FlowerPeer
from repro.cdn.flower.stats import (
    SystemStats,
    collect_overload_stats,
    collect_replication_stats,
    collect_system_stats,
)
from repro.dht.node import ChordNode
from repro.dht.ring import ChordRing
from repro.errors import CDNError
from repro.metrics.collector import MetricsCollector
from repro.net.landmarks import LandmarkBinner
from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog

#: Attempts to place a seeded directory peer inside its target locality
#: before accepting a (slightly suboptimal) out-of-locality placement.
_MAX_PLACEMENT_TRIES = 8


class FlowerSystem(CdnSystem):
    """Flower-CDN (and, with the right params, PetalUp-CDN)."""

    name = "flower"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        binner: LandmarkBinner,
        catalog: Catalog,
        params: ProtocolParams,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        super().__init__(sim, network, binner, catalog, params, metrics)
        self.ring = ChordRing(params.dring)
        self.key_service = DRingKeyService(
            self.ring.space,
            catalog.num_websites,
            binner.num_localities,
            params.max_instances,
        )
        self.seed_identities: List[int] = []
        #: Optional keyword-search extension (paper section 7 future work);
        #: set a :class:`~repro.cdn.flower.search.KeywordSearchEngine` to
        #: enable ``FlowerPeer.search``.
        self.search_engine = None
        #: Total directory-index members evicted by keepalive-age sweeps
        #: (``DirectoryRole.expire_members``).  Lets reports -- and the
        #: chaos auditor -- distinguish silent expiry from crash-driven
        #: removal when accounting recovery behaviour.
        self.expired_members = 0
        #: Overload extension totals (survive role teardown, unlike the
        #: per-role counters): queries rejected at an admission queue and
        #: members handed to a successor instance by replica-aware sheds.
        self.shed_queries = 0
        self.members_shed = 0
        #: Queue-aware redirect hints (reactive overload extension): total
        #: hint-guided pre-route hops taken, how many of those landed a
        #: directory hit, and how many hit a stale target (crashed or
        #: demoted since it gossiped its load).
        self.hint_hops = 0
        self.hint_hits = 0
        self.hint_stale = 0
        #: Shedding-aware content rebalancing: hot-key spill orders issued
        #: by pressured directories, adoptions completed by the targets,
        #: and the byte budget they consumed (in KB).
        self.rebalance_spills = 0
        self.rebalance_adoptions = 0
        self.rebalance_kb = 0.0
        #: Live directory registry: ``(website, locality) -> {address:
        #: peer}``, maintained at every directory-role transition so
        #: per-petal questions (instance counts, petal sizes, overload
        #: reports) are O(instances) instead of a population scan.
        self._directory_registry: dict = {}

    # ------------------------------------------------------------- registry
    def register_directory(self, peer: FlowerPeer, role: DirectoryRole) -> None:
        """A peer started serving *role* (ring-integrated or provisional)."""
        slot = self._directory_registry.setdefault((role.website, role.locality), {})
        slot[peer.address] = peer

    def unregister_directory(self, peer: FlowerPeer, role: DirectoryRole) -> None:
        """A peer stopped serving *role* (crash, demotion, graceful leave)."""
        slot = self._directory_registry.get((role.website, role.locality))
        if slot is not None:
            slot.pop(peer.address, None)
            if not slot:
                del self._directory_registry[(role.website, role.locality)]

    def directory_instances(self, website: int, locality: int) -> dict:
        """Live ``{address: peer}`` of one petal's directory instances."""
        return self._directory_registry.get((website, locality), {})

    # ---------------------------------------------------------------- peers
    def _make_peer(self, identity: int) -> BasePeer:
        return FlowerPeer(self, identity, self.website_of(identity))

    # ------------------------------------------------------------- seeding
    @property
    def num_seed_identities(self) -> int:
        """k x |W|: one initial directory peer per (website, locality)."""
        return self.catalog.num_websites * self.binner.num_localities

    def setup_initial_population(self) -> None:
        """Create the initial directory peers and warm-start D-ring."""
        if self.seed_identities:
            raise CDNError("initial population already created")
        chord_nodes: List[ChordNode] = []
        roles: List[DirectoryRole] = []
        peers: List[FlowerPeer] = []
        identity = 0
        for website, locality, position in self.key_service.all_positions(0):
            self.assign_website(identity, website)
            peer = self._place_peer_in_locality(identity, website, locality)
            self.peers[identity] = peer
            self.seed_identities.append(identity)
            role = DirectoryRole(peer.address, website, locality, 0, position)
            role.chord = ChordNode(peer, self.ring, position)
            chord_nodes.append(role.chord)
            roles.append(role)
            peers.append(peer)
            identity += 1
        self.ring.warm_start(chord_nodes)
        for peer, role in zip(peers, roles):
            peer.begin_session()
            peer._directory_role_active(role)

    def _place_peer_in_locality(
        self, identity: int, website: int, locality: int
    ) -> FlowerPeer:
        """Create a peer whose landmark-binned locality is *locality*.

        The topology honours the cluster hint but binning is probabilistic
        at cluster borders, so retry a few times; accept a mismatch after
        that (the directory then simply serves a petal it sits slightly
        outside of, which a real deployment also cannot preclude).
        """
        for attempt in range(_MAX_PLACEMENT_TRIES):
            peer = FlowerPeer(self, identity, website, cluster_hint=locality)
            if peer.locality == locality:
                return peer
            peer.fail()  # discard the badly placed candidate host
        self.sim.emit("flower.seed_placement_mismatch", locality=locality)
        peer = FlowerPeer(self, identity, website, cluster_hint=locality)
        peer.locality = locality  # serve the intended petal regardless
        return peer

    # ------------------------------------------------------------- reports
    def directory_count(self) -> int:
        """Currently active directory peers (D-ring population)."""
        return len(self.ring.active_members())

    def petal_size(self, website: int, locality: int) -> int:
        """Members across all directory instances of one petal."""
        total = 0
        for peer in self.directory_instances(website, locality).values():
            d = peer.directory
            if (
                peer.alive
                and d is not None
                and d.website == website
                and d.locality == locality
            ):
                total += d.load
        return total

    def stats(self) -> SystemStats:
        """One versioned snapshot of every extension's counters.

        The single stats entry point: typed sub-blocks for the overload,
        replication, and swarm planes (see
        :mod:`repro.cdn.flower.stats`).  Serialize with
        ``stats().to_dict()``; the legacy per-plane methods below delegate
        here and warn.
        """
        return collect_system_stats(self)

    def overload_stats(self) -> dict:
        """Deprecated: use ``stats().overload`` (same data, typed)."""
        warnings.warn(
            "FlowerSystem.overload_stats() is deprecated; "
            "use stats().overload instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return collect_overload_stats(self).to_dict()

    def replication_stats(self) -> dict:
        """Deprecated: use ``stats().replication`` (same data, typed)."""
        warnings.warn(
            "FlowerSystem.replication_stats() is deprecated; "
            "use stats().replication instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return collect_replication_stats(self).to_dict()
