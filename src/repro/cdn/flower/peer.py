"""One Flower-CDN participant: content-peer behaviour, the directory role,
query protocols, and the maintenance protocols of section 5.

A :class:`FlowerPeer` always carries the *content role* once it has joined a
petal -- a partial view of its petal, content summaries learnt by gossip,
and ``dir-info`` about the directory peer through which it joined -- and may
additionally carry the *directory role*
(:class:`~repro.cdn.flower.directory.DirectoryRole`) while serving a
(website, locality, instance) slot on D-ring.

Query paths (sections 3.2 and 4):

- a **new client** routes its query over D-ring to d(ws, loc) [instance 0],
  scanning successive instances while they report overload (PetalUp); the
  processing directory registers the client, answers from its
  directory-index, and hands over a view sample so the client joins the
  petal as a content peer;
- a **content peer** "does not use D-ring anymore": it answers from its own
  store, then from gossip-learnt content summaries (fetching from the
  closest summarised holder), then by asking its directory peer, and only
  then falls back to the origin web server.

Maintenance (section 5):

- keepalive and push messages keep the directory-index fresh and detect
  directory failure;
- dir-info (position id, address, age) is reconciled during gossip --
  entries for the *same* directory position keep the smaller age;
- the first content peer that detects its directory's failure tries to join
  D-ring at the vacant position itself; losers of the race adopt the winner
  (the ``"taken"`` / ``"race"`` join outcomes) and re-push their content;
- a replacement directory answers early queries from the content summaries
  it gossip-collected while still a plain content peer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from repro.cdn.base import BasePeer
from repro.cdn.flower.directory import DirectoryRole
from repro.cdn.swarm import SwarmTransfer
from repro.cdn.flower.replication import (
    DirectoryReplicator,
    ReplicaRecord,
    ReplicaStore,
    delta_sync_payload,
    full_sync_payload,
)
from repro.cdn.flower.search import staleness_bound_ms
from repro.errors import CDNError
from repro.dht.node import ChordNode, LookupResult, NodeRef, deliver_route_result, route_step
from repro.gossip.cyclon import CyclonProtocol
from repro.gossip.summaries import make_summary
from repro.gossip.view import Contact, PartialView
from repro.metrics.loadbalance import top_gini_contributors
from repro.net.message import Message
from repro.sim.process import PeriodicProcess
from repro.types import Address, ChordId, ObjectKey

#: How many summary-advertised providers a content peer tries before
#: falling back to its directory.
_MAX_SUMMARY_ATTEMPTS = 2

#: How many times a new client restarts its D-ring scan before giving up
#: on the P2P system for this query.
_MAX_SCAN_TRIES = 2

#: How many gossip-view petal-mates extend the search-failover chain
#: beyond the hinted replica holders (section 5.4): they catch promoted
#: heirs / provisional claimants a stale hint cannot name.
_SEARCH_VIEW_CANDIDATES = 4

#: Bound on the per-peer partial chunk-replica map (swarming extension):
#: at most this many distinct keys, FIFO-evicted.
SWARM_HOLDINGS_LIMIT = 32


@dataclass
class DirInfo:
    """What a content peer knows about its directory peer (section 5.1).

    Attributes:
        position_id: the D-ring identifier of the directory slot.
        address: last known network address of its holder.
        age: periods since we last heard from it; reset on any contact,
            reconciled during gossip (smaller age wins).
    """

    position_id: ChordId
    address: Address
    age: int = 0

    def pack(self) -> tuple:
        return (self.position_id, self.address, self.age)

    @staticmethod
    def unpack(raw: Optional[tuple]) -> Optional["DirInfo"]:
        if raw is None:
            return None
        return DirInfo(raw[0], raw[1], raw[2])


class FlowerPeer(BasePeer):
    """A Flower-CDN / PetalUp-CDN participant (see module docstring)."""

    def __init__(self, system, identity, website, cluster_hint=None):
        super().__init__(system, identity, website, cluster_hint)
        # --- content role ---
        self.view = PartialView(owner=self.address)
        self.peer_summaries: Dict[Address, Any] = {}
        self.summary = make_summary(system.params.summary_kind)
        self.dir_info: Optional[DirInfo] = None
        self.gossip = CyclonProtocol(
            self,
            self.view,
            self.rng,
            shuffle_size=system.params.gossip_shuffle_size,
            local_data=self._gossip_data,
            on_peer_data=self._on_gossip_data,
            on_contact_dead=self._on_contact_dead,
        )
        self._gossip_process: Optional[PeriodicProcess] = None
        self._keepalive_process: Optional[PeriodicProcess] = None
        # --- suspect-directory degradation (failure model, section 5.1) ---
        # Consecutive directory RPCs whose whole retry budget was exhausted.
        # While > 0 the directory is *suspect*: queries degrade to
        # gossip-learnt summaries, pushes queue (drop-oldest) and a fast
        # re-probe decides between recovery and declared failure.
        self._dir_strikes = 0
        self._reprobe_pending = False
        self._pending_pushes: Deque[List[ObjectKey]] = deque(
            maxlen=system.params.push_queue_limit
        )
        # --- directory role ---
        self.directory: Optional[DirectoryRole] = None
        self._sweep_process: Optional[PeriodicProcess] = None
        self._recovering = False
        self._registering = False
        # Members a replica-aware split handed to us, to be re-pointed at
        # this peer once the new directory role is actually active:
        # ``(position, [addresses])`` (overload extension, inert otherwise).
        self._shed_notices: Optional[tuple] = None
        # A member transfer to the successor instance is in flight.
        self._shedding_members = False
        #: Successful ``flower.fetch`` replies served from our cache --
        #: the per-peer content-load signal behind the Gini reports.
        self.fetches_served = 0
        # --- swarming (chunked transfers; inert unless params.swarming) ---
        #: Partial chunk replicas placed on us by full-object holders
        #: (bounded, FIFO-evicted): key -> held chunk indices.
        self.chunk_holdings: Dict[ObjectKey, Set[int]] = {}
        #: Other holders we can name in ``swarm.manifest`` replies: the
        #: peers we placed chunks on, or the placer that seeded us.
        self._swarm_hints: Dict[ObjectKey, List[Address]] = {}
        self._placed: Set[ObjectKey] = set()
        #: Chunk payload bytes served to swarming downloaders -- the load
        #: signal the seeder_death chaos phase targets.
        self.bytes_uploaded = 0
        # --- warm failover (section 5.3; inert while replication_k == 0) ---
        self.replica_store = ReplicaStore()
        self._replicator: Optional[DirectoryReplicator] = None
        self._reconciling = False
        self._last_announce_ms = float("-inf")
        # --- scoped search failover (section 5.4; needs a search engine) ---
        # Replica holders of our directory slot, piggybacked on keepalive /
        # push / registration replies; consulted when a search cannot be
        # answered by the directory itself.
        self._search_replicas: List[Address] = []
        self._search_members: List[Address] = []
        self._search_position: Optional[int] = None
        # --- queue-aware redirect hints (overload extension; inert unless
        # params.redirect_hints) --- instance address -> (queue depth,
        # as-of time), harvested from directory replies and replica-sync
        # load vectors; consulted to pre-route a query to the least-loaded
        # live instance before the admission queue sheds it.
        self._petal_loads: Dict[Address, tuple] = {}
        # --- delivery fast path ---
        # Pre-register dispatch wrappers so ``Network._deliver`` hits the
        # handler cache directly and skips the ``on_message`` frame for the
        # kinds that dominate a run.  Each wrapper re-reads the live role
        # (``self.directory``) at call time, so invoking it is behaviourally
        # identical to routing through :meth:`on_message`.
        cache = self._handler_cache
        cache["chord.route"] = self._dispatch_chord_route
        cache["chord.route_result"] = self._dispatch_chord_route_result
        cache["gossip.shuffle"] = self._dispatch_gossip_shuffle
        for kind in (
            "chord.get_state",
            "chord.notify",
            "chord.ping",
            "chord.probe",
            "chord.successor_hint",
            "chord.predecessor_hint",
        ):
            cache[kind] = self._dispatch_chord_component

    # ------------------------------------------------------------ dispatch
    def on_message(self, message: Message) -> Optional[Dict[str, Any]]:
        """Route chord/gossip traffic to components, the rest to handlers.

        The checks are ordered by observed message frequency (``chord.route``
        dominates a Flower run), and the chord component's handler cache is
        consulted directly rather than through ``ChordNode.on_message`` --
        this method runs once for every delivered message in the system.
        """
        kind = message.kind
        if kind == "chord.route":
            chord = self.directory.chord if self.directory is not None else None
            return route_step(chord, self, message)
        if kind == "chord.route_result":
            return deliver_route_result(self, message)
        if kind.startswith("chord."):
            directory = self.directory
            chord = directory.chord if directory is not None else None
            if chord is None:
                # Stale D-ring traffic for a role we no longer hold.
                if kind == "chord.probe":
                    return {"status": "not_ready"}
                return {}
            handler = chord._handler_cache.get(kind)
            if handler is None:
                return chord.on_message(message)  # resolve + cache once
            return handler(message)
        if kind == "gossip.shuffle":
            return self.gossip.handle_shuffle(message)
        handler = self._handler_cache.get(kind)
        if handler is None:
            return super().on_message(message)  # resolve + cache once
        return handler(message)

    # Cache-resident wrappers (see ``__init__``): one Python frame instead of
    # the full ``on_message`` prefix-matching cascade per delivery.
    def _dispatch_chord_route(self, message: Message) -> Optional[Dict[str, Any]]:
        directory = self.directory
        return route_step(
            directory.chord if directory is not None else None, self, message
        )

    def _dispatch_chord_route_result(self, message: Message) -> Optional[Dict[str, Any]]:
        return deliver_route_result(self, message)

    def _dispatch_gossip_shuffle(self, message: Message) -> Optional[Dict[str, Any]]:
        return self.gossip.handle_shuffle(message)

    def _dispatch_chord_component(self, message: Message) -> Optional[Dict[str, Any]]:
        directory = self.directory
        chord = directory.chord if directory is not None else None
        if chord is None:
            if message.kind == "chord.probe":
                return {"status": "not_ready"}
            return {}
        handler = chord._handler_cache.get(message.kind)
        if handler is None:
            return chord.on_message(message)  # resolve + cache once
        return handler(message)

    # ------------------------------------------------------------ lifecycle
    def _on_session_begin(self) -> None:
        # The browser cache survived the crash; the membership state did not.
        self.summary = make_summary(self.system.params.summary_kind)
        for key in self.store.keys():
            self.summary.add(key)
        if not self.system.catalog.is_active(self.website):
            # Peers of non-active websites are "simply added to [their]
            # petal upon arrival" (section 6.1) -- they join through a
            # register scan rather than a first query.
            self.sim.schedule(
                self.rng.uniform(0.0, self.system.params.query_interval_ms),
                self._register_with_petal,
            )

    def _on_crash(self) -> None:
        for process_attr in ("_gossip_process", "_keepalive_process", "_sweep_process"):
            process = getattr(self, process_attr)
            if process is not None:
                process.cancel()
                setattr(self, process_attr, None)
        if self.directory is not None:
            self.system.unregister_directory(self, self.directory)
            if self.directory.chord is not None:
                self.directory.chord.shutdown()
            self.directory = None
        if self._replicator is not None:
            self._replicator.stop()
            self._replicator = None
        self.replica_store.clear()
        self._reconciling = False
        self._last_announce_ms = float("-inf")
        self.dir_info = None
        self.view.clear()
        self.peer_summaries.clear()
        self._recovering = False
        self._registering = False
        self._shed_notices = None
        self._shedding_members = False
        self._dir_strikes = 0
        self._reprobe_pending = False
        self._pending_pushes.clear()
        self._search_replicas = []
        self._search_members = []
        self._search_position = None
        self._petal_loads = {}

    @property
    def is_directory(self) -> bool:
        return self.directory is not None

    @property
    def in_petal(self) -> bool:
        """Content peer of some petal (registered with a directory)?"""
        return self.dir_info is not None or self.is_directory

    # =====================================================================
    # Query resolution
    # =====================================================================
    def _resolve_query(self, key: ObjectKey, started_at: float) -> None:
        """Resolve one query via the Flower-CDN paths (module docstring)."""
        if key in self.store:
            self._finish_query(key, "hit_local", self.address, started_at)
            return
        if self.directory is not None and self._serves_own_petal():
            self._query_own_directory(key, started_at)
        elif self.dir_info is not None:
            self._query_as_content_peer(key, started_at)
        else:
            self._scan_dring(key=key, started_at=started_at, instance=0, tries=0)

    def _serves_own_petal(self) -> bool:
        d = self.directory
        return (
            d is not None
            and d.website == self.website
            and d.locality == self.locality
        )

    # ------------------------------------------------- directory's own query
    def _query_own_directory(self, key: ObjectKey, started_at: float) -> None:
        """A directory peer resolves its own query from its index."""
        d = self.directory
        d.queries_handled += 1
        provider = d.pick_provider(key, self.rng, exclude={self.address})
        if provider is not None:
            if self.system.params.rebalance:
                d.note_fetch(key)
            self._fetch_provider(
                key,
                provider,
                "hit_directory",
                started_at,
                sources=self._provider_hints(d, key, {self.address, provider}),
            )
            return
        candidates = self._summary_candidates(key)
        if candidates:
            self._try_summary_fetch(key, candidates, started_at)
            return
        self._fetch_from_server(key, "miss_server", started_at)

    # ------------------------------------------------- content-peer queries
    def _query_as_content_peer(self, key: ObjectKey, started_at: float) -> None:
        candidates = self._summary_candidates(key)
        if candidates:
            self._try_summary_fetch(key, candidates, started_at)
        else:
            self._ask_directory(key, started_at)

    def _summary_candidates(self, key: ObjectKey) -> List[Address]:
        """Petal members whose gossiped summary advertises *key*, closest
        (lowest measured latency) first."""
        candidates = [
            address
            for address, summary in self.peer_summaries.items()
            if address != self.address
            and address in self.view
            and summary.contains(key)
        ]
        candidates.sort(key=lambda a: self.network.latency(self.address, a))
        return candidates

    def _try_summary_fetch(
        self,
        key: ObjectKey,
        candidates: List[Address],
        started_at: float,
        attempt: int = 0,
    ) -> None:
        if not candidates or attempt >= _MAX_SUMMARY_ATTEMPTS:
            self._ask_directory(key, started_at)
            return
        provider = candidates[0]

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("ok"):
                self._finish_query(key, "hit_summary", provider, started_at)
            else:
                # Bloom false positive (or a summary raced a pruned cache).
                self.peer_summaries.pop(provider, None)
                self._try_summary_fetch(key, candidates[1:], started_at, attempt + 1)

        def on_timeout() -> None:
            self._drop_contact(provider)
            self._try_summary_fetch(key, candidates[1:], started_at, attempt + 1)

        self.rpc(provider, "flower.fetch", {"key": key}, on_reply, on_timeout)

    def _ask_directory(self, key: ObjectKey, started_at: float) -> None:
        info = self.dir_info
        if info is None:
            self._scan_dring(key=key, started_at=started_at, instance=0, tries=0)
            return
        if self._dir_suspect:
            # Degraded mode: summaries were already tried; do not stall the
            # query on a directory we currently cannot reach.  The re-probe
            # chain decides whether it recovered or truly failed.
            self._fetch_from_server(key, "miss_failed", started_at)
            return
        if self.system.params.redirect_hints:
            route = self._hint_preroute(info)
            if route is not None:
                target, depth_from, depth_to = route
                self._query_hinted_instance(
                    key, started_at, target, info, depth_from, depth_to
                )
                return
        self._ask_home_directory(key, started_at, info)

    def _ask_home_directory(
        self, key: ObjectKey, started_at: float, info: Optional[DirInfo] = None
    ) -> None:
        """Ask our own directory instance (the pre-hints query path).

        Also the fallback after a stale hint-guided hop: *info* is then
        re-read (the home directory may have changed or failed during the
        hop), so a query never dead-ends on a cached pointer.
        """
        if info is None:
            info = self.dir_info
            if info is None:
                self._scan_dring(key=key, started_at=started_at, instance=0, tries=0)
                return
            if self._dir_suspect:
                self._fetch_from_server(key, "miss_failed", started_at)
                return

        def apply(payload: Dict[str, Any]) -> None:
            status = payload.get("status")
            if status == "shed":
                redirect = payload.get("redirect")
                if redirect is not None and redirect != self.address:
                    self._query_redirect_instance(key, started_at, redirect)
                else:
                    self._fail_query(key, "shed_overload", started_at)
                return
            if status == "provider":
                self._fetch_provider(
                    key,
                    payload["provider"],
                    "hit_directory",
                    started_at,
                    sources=payload.get("providers"),
                )
            elif payload.get("sibling_address") is not None:
                self._ask_sibling(
                    key, payload["sibling_address"], started_at, {info.address}
                )
            else:
                self._fetch_from_server(key, "miss_server", started_at)

        def on_reply(payload: Dict[str, Any]) -> None:
            status = payload.get("status")
            if status == "not_directory":
                self._on_directory_failure(info)
                self._fetch_from_server(key, "miss_failed", started_at)
                return
            info.age = 0
            self._harvest_load_hint(payload)
            self._note_directory_alive(info)
            self._after_queue_wait(payload, key, started_at, lambda: apply(payload))

        def on_give_up() -> None:
            self._on_directory_strike(info)
            self._fetch_from_server(key, "miss_failed", started_at)

        self._directory_rpc(
            info, "flower.query", {"key": key, "member": True}, on_reply, on_give_up
        )

    def _after_queue_wait(
        self,
        payload: Dict[str, Any],
        key: Optional[ObjectKey],
        started_at: Optional[float],
        continuation: Callable[[], None],
    ) -> None:
        """Run *continuation* after the reply's admission-queue wait.

        Transport replies are synchronous, so a directory models its
        bounded queue by stamping ``queue_wait_ms`` on the reply: the
        answer is in hand but only takes effect once the request's turn
        in the queue would have come.  Replies without the stamp (the
        default: ``directory_queue_limit == 0``) continue immediately on
        the exact pre-queueing code path.  The deferred continuation is
        dropped if this peer crashed or the query's ledger entry was
        superseded during the wait.
        """
        wait = payload.get("queue_wait_ms")
        if not wait:
            continuation()
            return

        def resume() -> None:
            if not self.alive:
                return
            if key is not None and self._open_queries.get(key) != started_at:
                return
            continuation()

        self.sim.schedule(wait, resume)

    def _query_redirect_instance(
        self, key: ObjectKey, started_at: float, address: Address
    ) -> None:
        """One failover attempt after a shed: ask the next PetalUp instance.

        The shedding directory named its successor instance (warm, under
        ``overload_shedding`` seeded with half its members), so the member
        retries there directly -- no D-ring scan.  A second shed, a
        timeout, or a not-a-directory answer ends the query with the
        terminal ``shed_overload`` outcome; there is no queue to wait in
        twice.
        """

        def apply(payload: Dict[str, Any]) -> None:
            status = payload.get("status")
            if status == "provider" and payload.get("provider") is not None:
                self._fetch_provider(
                    key,
                    payload["provider"],
                    "hit_directory",
                    started_at,
                    sources=payload.get("providers"),
                )
            elif status in ("shed", "not_directory"):
                self._fail_query(key, "shed_overload", started_at)
            else:
                self._fetch_from_server(key, "miss_server", started_at)

        def on_reply(payload: Dict[str, Any]) -> None:
            # The successor's reply carries its own load vector: the next
            # query can pre-route here without being shed at home first.
            self._harvest_load_hint(payload)
            self._after_queue_wait(payload, key, started_at, lambda: apply(payload))

        self.rpc(
            address,
            "flower.query",
            {"key": key, "member": True},
            on_reply,
            on_timeout=lambda: self._fail_query(key, "shed_overload", started_at),
        )

    # ------------------------------------------- queue-aware redirect hints
    def _fresh_depth(self, load: tuple, now: float, ttl_ms: float) -> Optional[int]:
        """A harvested depth while still actionable, else None.

        Queue depths are taken at face value within ``hint_ttl_ms`` of
        their measurement: the overload that filled a queue persists on
        the hint-refresh timescale (replies, keepalives, replica syncs),
        so extrapolating drain would systematically under-estimate.  Past
        the TTL the hint says nothing and is ignored.
        """
        depth, as_of = load
        if now - as_of > ttl_ms:
            return None
        return depth

    def _hint_preroute(self, info: DirInfo) -> Optional[tuple]:
        """Pick a better-looking instance than home, or None.

        Pre-routes only when fresh hints say the home instance's
        admission queue is at its limit (we would be shed) *and* some
        other known instance looks strictly less loaded.  Returns
        ``(target, home_depth, target_depth)``.
        """
        params = self.system.params
        limit = params.directory_queue_limit
        if limit < 1 or not self._petal_loads:
            return None
        now = self.sim.now
        ttl = params.hint_ttl_ms
        home = self._petal_loads.get(info.address)
        if home is None:
            return None
        home_depth = self._fresh_depth(home, now, ttl)
        if home_depth is None or home_depth < limit:
            return None
        best: Optional[Address] = None
        best_depth = home_depth
        for address in sorted(self._petal_loads):
            if address == info.address or address == self.address:
                continue
            depth = self._fresh_depth(self._petal_loads[address], now, ttl)
            if depth is not None and depth < best_depth:
                best = address
                best_depth = depth
        if best is None:
            return None
        return best, home_depth, best_depth

    def _query_hinted_instance(
        self,
        key: ObjectKey,
        started_at: float,
        target: Address,
        home: DirInfo,
        depth_from: int,
        depth_to: int,
    ) -> None:
        """One hint-guided pre-route hop (overload extension).

        Exactly one: every outcome below is terminal or hands off to an
        already-bounded path (the post-shed redirect, the home-directory
        fallback, the origin server), so a stale hint can cost at most
        one extra RPC -- never a routing loop -- and the ledger entry
        closes exactly once on every branch.
        """
        self.system.hint_hops += 1
        if self.sim.tracing("flower.hint_hop"):
            self.sim.emit(
                "flower.hint_hop",
                peer=self.address,
                key=key,
                frm=home.address,
                to=target,
                depth_from=depth_from,
                depth_to=depth_to,
            )

        def apply(payload: Dict[str, Any]) -> None:
            status = payload.get("status")
            if status == "provider" and payload.get("provider") is not None:
                self.system.hint_hits += 1
                self._fetch_provider(
                    key,
                    payload["provider"],
                    "hit_directory",
                    started_at,
                    sources=payload.get("providers"),
                )
            elif status == "shed":
                redirect = payload.get("redirect")
                if redirect is not None and redirect not in (self.address, target):
                    self._query_redirect_instance(key, started_at, redirect)
                else:
                    self._fail_query(key, "shed_overload", started_at)
            elif status == "not_directory":
                # Stale hint: the instance crashed or demoted since it
                # gossiped its load.  Forget it and fall back to today's
                # home-directory path (re-read, in case home moved too).
                self._petal_loads.pop(target, None)
                self.system.hint_stale += 1
                self._ask_home_directory(key, started_at)
            else:
                self._fetch_from_server(key, "miss_server", started_at)

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("status") != "not_directory":
                self._harvest_load_hint(payload)
            self._after_queue_wait(payload, key, started_at, lambda: apply(payload))

        def on_timeout() -> None:
            # Dead hinted instance: accounted as a miss, hint dropped.
            self._petal_loads.pop(target, None)
            self.system.hint_stale += 1
            self._fetch_from_server(key, "miss_failed", started_at)

        self.rpc(target, "flower.query", {"key": key, "member": True}, on_reply, on_timeout)

    def _harvest_load_hint(self, payload: Dict[str, Any]) -> None:
        """Remember the load vector piggybacked on a directory reply."""
        hint = payload.get("load_hint")
        if hint is None:
            return
        now = self.sim.now
        for address, depth, age_ms in hint:
            self._note_petal_load(address, depth, now - age_ms)

    def _note_petal_load(self, address: Address, depth: int, as_of: float) -> None:
        if address == self.address:
            return
        current = self._petal_loads.get(address)
        if current is None or as_of >= current[1]:
            self._petal_loads[address] = (depth, as_of)

    def _ask_sibling(
        self,
        key: ObjectKey,
        sibling: Address,
        started_at: float,
        visited: Set[Address],
    ) -> None:
        """Directory collaboration (section 3.2): walk the same website's
        directory peers -- ring neighbours thanks to the key management
        service -- before giving up on the P2P system.  The walk follows
        successor direction along the website's contiguous identifier arc
        and stops at its end, at a repeat, or after k-1 extra directories.
        """
        visited = visited | {sibling}

        def apply(payload: Dict[str, Any]) -> None:
            provider = payload.get("provider")
            if payload.get("status") == "provider" and provider is not None:
                self._fetch_provider(
                    key,
                    provider,
                    "hit_transfer",
                    started_at,
                    sources=payload.get("providers"),
                )
                return
            next_sibling = payload.get("sibling_address")
            if (
                next_sibling is not None
                and next_sibling not in visited
                and next_sibling != self.address
                and len(visited) <= self.system.binner.num_localities
            ):
                self._ask_sibling(key, next_sibling, started_at, visited)
            else:
                self._fetch_from_server(key, "miss_server", started_at)

        def on_reply(payload: Dict[str, Any]) -> None:
            self._after_queue_wait(payload, key, started_at, lambda: apply(payload))

        self.rpc(
            sibling,
            "flower.query",
            {"key": key, "foreign": True},
            on_reply,
            on_timeout=lambda: self._fetch_from_server(key, "miss_server", started_at),
        )

    def _fetch_provider(
        self,
        key: ObjectKey,
        provider: Address,
        outcome: str,
        started_at: float,
        hops: int = 0,
        sibling: Optional[Address] = None,
        sources: Optional[List[Address]] = None,
    ) -> None:
        if provider == self.address:
            self._finish_query(key, "hit_local", self.address, started_at, hops)
            return
        system = self.system
        if (
            system.params.swarming
            and system.sizes is not None
            and system.sizes.chunk_count(key) > 1
        ):
            # Large object: chunked multi-source transfer with per-chunk
            # failover instead of one atomic fetch (repro.cdn.swarm).
            SwarmTransfer(
                self, key, provider, started_at, hops, extra_sources=sources
            ).start()
            return

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("ok"):
                self._finish_query(key, outcome, provider, started_at, hops)
            else:
                self._fetch_from_server(key, "miss_failed", started_at, hops)

        def on_timeout() -> None:
            self._drop_contact(provider)
            # Tell our directory so it stops redirecting others to a corpse
            # before the next expiry sweep notices.
            if self.dir_info is not None:
                self.send(self.dir_info.address, "flower.dead_provider", dead=provider)
            self._fetch_from_server(key, "miss_failed", started_at, hops)

        self.rpc(provider, "flower.fetch", {"key": key}, on_reply, on_timeout)

    def handle_flower_dead_provider(self, message: Message) -> None:
        """A client observed one of our indexed providers dead: evict it."""
        d = self.directory
        if d is not None:
            d.remove_member(message.payload["dead"])
        return None

    # --------------------------------------------------- new-client D-ring
    def _scan_dring(
        self,
        key: Optional[ObjectKey],
        started_at: Optional[float],
        instance: int,
        tries: int,
    ) -> None:
        """Route over D-ring to d(ws, loc, instance); register on arrival.

        With ``key`` set this is a new client's query (section 3.2); with
        ``key=None`` it is a bare petal registration (non-active websites,
        or a re-join after losing the directory).
        """
        service = self.system.key_service
        position = service.position_id(self.website, self.locality, instance)
        bootstrap = self.system.ring.random_bootstrap(self.rng)
        if bootstrap is None:
            # D-ring is empty: we are the first participant of the system.
            self._claim_directory_position(key, started_at, instance=0)
            return
        lookup_node = ChordNode(self, self.system.ring, position)

        def on_lookup(result: LookupResult) -> None:
            if not self.alive:
                return
            if not result.ok:
                self._scan_failed(key, started_at)
            elif result.found.id == position:
                self._contact_directory(
                    key, started_at, result.found, instance, tries, result.hops
                )
            elif instance == 0:
                # Vacant position: no directory for our petal exists.  A new
                # client "can try to join D-ring as a directory peer"
                # (section 5.2.2, case 2).
                self._claim_directory_position(key, started_at, instance=0)
            else:
                # Every existing instance was overloaded and the next slot
                # is still vacant; instance-1 (the final one) must process
                # (it also triggers the PetalUp split -- section 4).
                self._scan_failed(key, started_at)

        # A transient Chord node object drives the lookup; it never joins
        # the ring (lookups from non-members start at a bootstrap member).
        lookup_node.lookup(position, on_lookup, start=bootstrap)

    def _contact_directory(
        self,
        key: Optional[ObjectKey],
        started_at: Optional[float],
        found: NodeRef,
        instance: int,
        tries: int,
        hops: int,
    ) -> None:
        payload: Dict[str, Any] = {"new_client": True}
        if key is not None:
            payload["key"] = key
        else:
            payload["register_only"] = True
            payload["keys"] = sorted(self.store.keys())

        def apply(reply: Dict[str, Any]) -> None:
            status = reply.get("status")
            if status == "scan" and reply.get("next_address") is not None:
                next_instance = instance + 1
                if next_instance < self.system.params.max_instances:
                    self._contact_directory(
                        key,
                        started_at,
                        NodeRef(found.id + 1, reply["next_address"]),
                        next_instance,
                        tries,
                        hops,
                    )
                else:
                    self._scan_failed(key, started_at)
                return
            if status == "shed":
                # Rejected at the admission queue before registration.
                # Follow the redirect down the instance chain if one
                # exists; otherwise the query ends shed (a registration
                # attempt simply retries later).
                redirect = reply.get("redirect")
                next_instance = instance + 1
                if (
                    redirect is not None
                    and next_instance < self.system.params.max_instances
                ):
                    self._contact_directory(
                        key,
                        started_at,
                        NodeRef(found.id + 1, redirect),
                        next_instance,
                        tries,
                        hops,
                    )
                elif key is not None and started_at is not None:
                    self._fail_query(key, "shed_overload", started_at)
                else:
                    self._retry_scan(key, started_at, tries)
                return
            if status == "not_directory":
                self._retry_scan(key, started_at, tries)
                return
            self._adopt_registration(reply)
            if key is None or started_at is None:
                return
            if status == "provider":
                self._fetch_provider(
                    key,
                    reply["provider"],
                    "hit_directory",
                    started_at,
                    hops,
                    sources=reply.get("providers"),
                )
            elif reply.get("sibling_address") is not None:
                self._ask_sibling(
                    key, reply["sibling_address"], started_at, {found.address}
                )
            else:
                self._fetch_from_server(key, "miss_server", started_at, hops)

        def on_reply(reply: Dict[str, Any]) -> None:
            self._after_queue_wait(reply, key, started_at, lambda: apply(reply))

        params = self.system.params
        self.retrying_rpc(
            found.address,
            "flower.query",
            payload,
            on_reply=on_reply,
            on_give_up=lambda: self._retry_scan(key, started_at, tries),
            retries=params.rpc_retries,
            backoff_ms=params.rpc_backoff_ms,
        )

    def _retry_scan(
        self,
        key: Optional[ObjectKey],
        started_at: Optional[float],
        tries: int,
    ) -> None:
        if tries + 1 < _MAX_SCAN_TRIES:
            self.sim.schedule(
                self.system.params.scan_retry_delay_ms,
                self._scan_dring,
                key,
                started_at,
                0,
                tries + 1,
            )
        else:
            self._scan_failed(key, started_at)

    def _scan_failed(self, key: Optional[ObjectKey], started_at: Optional[float]) -> None:
        self._registering = False
        if key is not None and started_at is not None:
            self._fetch_from_server(key, "miss_failed", started_at)
        elif self.alive and not self.in_petal:
            # A bare registration attempt failed: try again later (query-less
            # peers have no other trigger to re-enter the petal).
            self.sim.schedule(
                4 * self.system.params.scan_retry_delay_ms,
                self._register_with_petal,
            )

    def _adopt_registration(self, reply: Dict[str, Any]) -> None:
        """Join the petal: record dir-info, seed the view, start gossip."""
        self._registering = False
        position = reply.get("dir_position")
        address = reply.get("dir_address")
        if position is None or address is None:
            return
        if self.directory is not None:
            return  # we became a directory in the meantime
        self.dir_info = DirInfo(position, address, age=0)
        self._dir_strikes = 0
        self._pending_pushes.clear()
        self._harvest_search_replicas(reply)
        self._harvest_load_hint(reply)
        for contact_address in reply.get("view_sample", []):
            if contact_address != self.address:
                self.view.add(Contact(contact_address, age=0))
        self._start_content_processes()
        self.sim.emit(
            "flower.joined_petal", peer=self.address, position=position
        )
        # This directory has never seen our cache: push everything we hold
        # so the directory-index reflects it (section 5.1).
        self.store.reset_push_state()
        if len(self.store):
            self._push_to_directory()

    def _register_with_petal(self) -> None:
        """Bare registration (no query): non-active arrivals and re-joins."""
        if not self.alive or self.in_petal or self._registering or self._recovering:
            return
        self._registering = True
        self._scan_dring(key=None, started_at=None, instance=0, tries=0)

    # =====================================================================
    # Content-role periodic behaviour
    # =====================================================================
    def _start_content_processes(self) -> None:
        params = self.system.params
        if self._gossip_process is None or not self._gossip_process.active:
            self._gossip_process = PeriodicProcess(
                self.sim,
                params.gossip_period_ms,
                self._gossip_tick,
                initial_delay=self.rng.uniform(0.0, params.gossip_period_ms),
                jitter=0.05,
                rng=self.rng,
            )
        if self._keepalive_process is None or not self._keepalive_process.active:
            self._keepalive_process = PeriodicProcess(
                self.sim,
                params.keepalive_period_ms,
                self._keepalive_tick,
                initial_delay=self.rng.uniform(0.0, params.keepalive_period_ms),
                jitter=0.05,
                rng=self.rng,
            )

    def _gossip_tick(self) -> None:
        if self.alive and self.directory is None:
            self.gossip.gossip_round()

    def _gossip_data(self) -> Dict[str, Any]:
        return {
            "summary": self.summary.snapshot(),
            "dir": self.dir_info.pack() if self.dir_info else None,
        }

    def _on_gossip_data(self, src: Address, data: Dict[str, Any]) -> None:
        summary = data.get("summary")
        if summary is not None:
            self.peer_summaries[src] = summary
        self._reconcile_dir_info(DirInfo.unpack(data.get("dir")))

    def _reconcile_dir_info(self, incoming: Optional[DirInfo]) -> None:
        """Keep the fresher information about the same directory position
        (section 5.1); adopt any directory of our petal if we have none."""
        if incoming is None or self.directory is not None:
            return
        mine = self.dir_info
        if mine is None:
            decoded = self.system.key_service.decode(incoming.position_id)
            if decoded is not None and decoded[0] == self.website and decoded[1] == self.locality:
                self.dir_info = DirInfo(
                    incoming.position_id, incoming.address, incoming.age
                )
                self._start_content_processes()
                self.store.reset_push_state()
                if len(self.store):
                    self._push_to_directory()
            return
        if mine.position_id == incoming.position_id and incoming.age < mine.age:
            replaced = mine.address != incoming.address
            mine.address = incoming.address
            mine.age = incoming.age
            if replaced:
                # The slot changed hands: the replacement directory must
                # learn our content to rebuild its index (section 5.2.2).
                self._dir_strikes = 0
                self._pending_pushes.clear()
                self.store.reset_push_state()
                if len(self.store):
                    self._push_to_directory()

    def _on_contact_dead(self, address: Address) -> None:
        self.peer_summaries.pop(address, None)

    def _drop_contact(self, address: Address) -> None:
        self.view.remove(address)
        self.peer_summaries.pop(address, None)

    def _keepalive_tick(self) -> None:
        if not self.alive or self.directory is not None:
            return
        info = self.dir_info
        if info is None:
            self._register_with_petal()
            return
        if self._dir_suspect:
            return  # the re-probe chain owns contact attempts while suspect
        info.age += 1

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("status") == "ok":
                info.age = 0
                self._harvest_search_replicas(payload)
                self._harvest_load_hint(payload)
                self._note_directory_alive(info)
            else:
                self._on_directory_failure(info)

        self._directory_rpc(
            info,
            "flower.keepalive",
            {},
            on_reply,
            lambda: self._on_directory_strike(info),
        )

    def _push_to_directory(self) -> None:
        info = self.dir_info
        if info is None or not self.alive:
            return
        keys = sorted(self.store.keys())
        if self._dir_suspect:
            self._queue_push(keys)
            return

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("status") == "ok":
                self.store.mark_pushed()
                info.age = 0
                # This push carried the full key list, superseding anything
                # queued while the directory was suspect.
                self._pending_pushes.clear()
                self._harvest_search_replicas(payload)
                self._harvest_load_hint(payload)
                self._note_directory_alive(info)
            else:
                self._on_directory_failure(info)

        def on_give_up() -> None:
            self._queue_push(keys)
            self._on_directory_strike(info)

        self._directory_rpc(info, "flower.push", {"keys": keys}, on_reply, on_give_up)

    # ----------------------------------------- suspect-directory degradation
    @property
    def _dir_suspect(self) -> bool:
        """Directory currently unreachable but not yet declared failed."""
        return self._dir_strikes > 0

    def _directory_rpc(
        self,
        info: DirInfo,
        kind: str,
        payload: Dict[str, Any],
        on_reply: Callable[[Dict[str, Any]], None],
        on_give_up: Callable[[], None],
    ) -> None:
        """All directory-facing RPCs share the retry budget/backoff knobs."""
        params = self.system.params
        self.retrying_rpc(
            info.address,
            kind,
            payload,
            on_reply=on_reply,
            on_give_up=on_give_up,
            retries=params.rpc_retries,
            backoff_ms=params.rpc_backoff_ms,
        )

    def _on_directory_strike(self, info: DirInfo) -> None:
        """One directory RPC exhausted its whole retry budget.

        Below ``dir_failure_threshold`` strikes the directory is only
        *suspect* -- we keep serving queries from gossip-learnt summaries,
        queue pushes, and schedule a fast re-probe.  At the threshold we
        declare failure and race for the slot (section 5.2.1).
        """
        if not self.alive or self.dir_info is not info:
            return
        self._dir_strikes += 1
        params = self.system.params
        self.sim.emit(
            "flower.directory_suspect",
            peer=self.address,
            position=info.position_id,
            strikes=self._dir_strikes,
        )
        if self._dir_strikes >= params.dir_failure_threshold:
            self._dir_strikes = 0
            self._pending_pushes.clear()
            self._on_directory_failure(info)
            return
        if not self._reprobe_pending:
            self._reprobe_pending = True
            self.sim.schedule(
                params.scan_retry_delay_ms, self._reprobe_directory, info
            )

    def _reprobe_directory(self, info: DirInfo) -> None:
        self._reprobe_pending = False
        if not self.alive or self.dir_info is not info or not self._dir_suspect:
            return

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("status") == "ok":
                info.age = 0
                self._harvest_search_replicas(payload)
                self._harvest_load_hint(payload)
                self._note_directory_alive(info)
            else:
                self._on_directory_failure(info)

        self._directory_rpc(
            info, "flower.keepalive", {}, on_reply, lambda: self._on_directory_strike(info)
        )

    def _note_directory_alive(self, info: DirInfo) -> None:
        """Any successful directory contact clears suspicion and flushes
        the queued pushes (coalesced: pushes carry the full key list, so
        one fresh push supersedes everything queued during the outage)."""
        if self._dir_strikes:
            self._dir_strikes = 0
            self.sim.emit(
                "flower.directory_recovered",
                peer=self.address,
                position=info.position_id,
            )
        if self._pending_pushes:
            self._pending_pushes.clear()
            self.sim.emit("flower.push_flushed", peer=self.address)
            self._push_to_directory()

    def _queue_push(self, keys: List[ObjectKey]) -> None:
        self._pending_pushes.append(keys)
        self.sim.emit(
            "flower.push_queued",
            peer=self.address,
            queued=len(self._pending_pushes),
        )

    def _on_evicted(self, keys) -> None:
        # Summaries have no removal (Bloom filters cannot unlearn), so
        # rebuild from the store; the next push carries the full key list
        # and the directory's set-diff unlearns the evictions.
        self.summary = make_summary(self.system.params.summary_kind)
        for key in self.store.keys():
            self.summary.add(key)

    def _after_query(self, key: ObjectKey, outcome: str) -> None:
        self.summary.add(key)
        self._maybe_place_chunks(key)
        if self.directory is not None:
            return  # a directory consults its own store directly
        if self.dir_info is not None and self.store.should_push(
            self.system.params.push_threshold
        ):
            self._push_to_directory()

    # =====================================================================
    # Directory failure recovery and role acquisition (section 5.2)
    # =====================================================================
    def _on_directory_failure(self, info: DirInfo) -> None:
        """We observed our directory peer dead: race to replace it."""
        if self.dir_info is not info and self.dir_info is not None:
            return  # already re-pointed (gossip beat us to it)
        self.dir_info = None
        self._dir_strikes = 0
        self._reprobe_pending = False
        self._pending_pushes.clear()
        self.sim.emit(
            "flower.directory_failure_detected",
            peer=self.address,
            position=info.position_id,
        )
        if self._recovering or self.directory is not None:
            return
        decoded = self.system.key_service.decode(info.position_id)
        if decoded is None:
            return
        website, locality, instance = decoded
        self._begin_directory_role(website, locality, instance, info.position_id)

    def _claim_directory_position(
        self,
        key: Optional[ObjectKey],
        started_at: Optional[float],
        instance: int,
    ) -> None:
        """A new client found its petal's position vacant (section 5.2.2)."""
        self._registering = False
        if self._recovering or self.directory is not None:
            if key is not None and started_at is not None:
                self._fetch_from_server(key, "miss_server", started_at)
            return
        position = self.system.key_service.position_id(
            self.website, self.locality, instance
        )
        self._begin_directory_role(
            self.website, self.locality, instance, position
        )
        if key is not None and started_at is not None:
            # Nobody indexed our petal yet; this query can only be a miss.
            self._fetch_from_server(key, "miss_server", started_at)

    def _begin_directory_role(
        self,
        website: int,
        locality: int,
        instance: int,
        position: ChordId,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Try to join D-ring at *position*; only the first joiner wins."""
        self._recovering = True
        role = DirectoryRole(self.address, website, locality, instance, position)
        self._attach_search(role)
        role.chord = ChordNode(self, self.system.ring, position)
        if snapshot is not None:
            role.adopt_snapshot(snapshot)
        bootstrap = self.system.ring.random_bootstrap(self.rng)

        def on_joined() -> None:
            self._directory_role_active(role)

        def on_failed(reason: str, holder: Optional[NodeRef]) -> None:
            self._recovering = False
            self._shed_notices = None
            role.chord.shutdown()
            role.chord = None
            if holder is not None and self.alive:
                # Someone else integrated first: adopt them (section 5.2.2)
                # and hand them our content by pushing.
                self.dir_info = DirInfo(position, holder.address, age=0)
                self._start_content_processes()
                self.store.reset_push_state()
                if len(self.store):
                    self._push_to_directory()
            elif (
                reason == "lookup"
                and self.alive
                and self._replication_on
                and self.directory is None
            ):
                # D-ring is unreachable -- most likely we sit on the minority
                # side of a partition.  Serve the petal *provisionally*
                # (seeded from any replica we hold) and keep retrying the
                # integration; the reconciliation protocol resolves any
                # split-brain claim once the partition heals (section 5.3).
                self._activate_provisional(role)
            self.sim.emit(
                "flower.directory_join_failed",
                peer=self.address,
                reason=reason,
            )

        if bootstrap is None:
            role.chord.create()
            self._directory_role_active(role)
        else:
            role.chord.join(bootstrap, on_joined, on_failed)

    def _directory_role_active(self, role: DirectoryRole) -> None:
        self._recovering = False
        if not self.alive:
            role.chord.shutdown()
            return
        self._attach_search(role)
        self.directory = role
        self.system.register_directory(self, role)
        self.dir_info = None
        # Directory peers leave the content-peer gossip/keepalive loops;
        # their view and summaries live on to answer early queries
        # ("p can try to answer first received queries from its content
        # summaries" -- section 5.2.2).
        params = self.system.params
        if self._sweep_process is None or not self._sweep_process.active:
            self._sweep_process = PeriodicProcess(
                self.sim,
                params.keepalive_period_ms,
                self._sweep_tick,
                initial_delay=params.keepalive_period_ms,
                jitter=0.05,
                rng=self.rng,
            )
        self.sim.emit(
            "flower.directory_active",
            peer=self.address,
            position=role.position_id,
            website=role.website,
            locality=role.locality,
            instance=role.instance,
        )
        if self._replication_on:
            self._attach_replicator(role)
            if role.load == 0:
                # Cold crash-replacement: win back the index from replicas
                # instead of waiting out keepalives/pushes (section 5.3).
                self._warm_takeover(role)
        notices = self._shed_notices
        if notices is not None:
            self._shed_notices = None
            position, members = notices
            if position == role.position_id:
                # Replica-aware split: the partition members learn their
                # new directory from us, not from a failed keepalive.
                for member in members:
                    self.send(
                        member,
                        "flower.member_shed",
                        position=role.position_id,
                        address=self.address,
                    )

    def _sweep_tick(self) -> None:
        if self.directory is None or not self.alive:
            return
        role = self.directory
        expired = role.expire_members(self.system.params.member_expiry_rounds)
        if expired:
            self.system.expired_members += len(expired)
            sim = self.sim
            if sim.tracing("flower.member_expired"):
                # Per-member eviction events: the auditor (and recovery
                # reports) can tell a silent keepalive expiry apart from a
                # crash-driven removal or a failure false positive.
                for member in expired:
                    sim.emit(
                        "flower.member_expired",
                        directory=self.address,
                        member=member,
                        position=role.position_id,
                    )
            sim.emit(
                "flower.members_expired",
                directory=self.address,
                count=len(expired),
            )
        params = self.system.params
        if params.overload_shedding and role.overloaded(params.directory_load_limit):
            self._shed_members_to_successor(role)
        if params.rebalance:
            self._maybe_rebalance(role)

    def _shed_members_to_successor(self, d: DirectoryRole) -> None:
        """Replica-aware overload relief (PetalUp extension).

        A sustained-overloaded instance does not wait for new clients to
        trickle down the section-4 instance scan: it hands its excess
        members (those above ``directory_load_limit``, highest addresses
        first -- deterministic) straight to the already-running successor
        instance in one transfer, then re-points each shed member at it.
        Members only hear about the move after the successor confirmed
        adoption, so there is no window where nobody indexes them.  With
        no successor yet, fall back to triggering the split itself.
        """
        if self._shedding_members:
            return
        successor = self._next_instance_address(d)
        if successor is None:
            self._maybe_promote_next(d)
            return
        count = d.load - self.system.params.directory_load_limit
        if count <= 0:
            return
        shed = sorted(c.address for c in d.members.contacts())[-count:]
        entries = [
            (address, sorted(d.member_keys.get(address, ()))) for address in shed
        ]
        next_position = self.system.key_service.position_id(
            d.website, d.locality, d.instance + 1
        )
        self._shedding_members = True

        def on_reply(payload: Dict[str, Any]) -> None:
            self._shedding_members = False
            if not payload.get("ok") or self.directory is not d:
                return
            for address in shed:
                d.remove_member(address)
                self.send(
                    address,
                    "flower.member_shed",
                    position=next_position,
                    address=successor,
                )
            d.members_shed += len(shed)
            self.system.members_shed += len(shed)
            if self.sim.tracing("flower.members_shed"):
                self.sim.emit(
                    "flower.members_shed",
                    directory=self.address,
                    successor=successor,
                    count=len(shed),
                )

        def on_timeout() -> None:
            self._shedding_members = False

        self.rpc(
            successor,
            "flower.member_transfer",
            {"position": next_position, "entries": entries},
            on_reply,
            on_timeout,
        )

    # -------------------------------------- shedding-aware content rebalance
    def _maybe_rebalance(self, d: DirectoryRole) -> None:
        """Spill the hottest keys to under-loaded members (one sweep round).

        Reactive companion to the admission queue: shedding tells us the
        petal is over capacity, the per-key fetch counters tell us *which*
        content concentrates that load (the top Gini contributors), so we
        ask cold members to adopt copies of exactly those keys.  More
        holders per hot key spreads subsequent directory picks and summary
        hits, lowering the content-fetch Gini without moving members.
        Churn is bounded by a per-round key cap, a byte budget, and a
        cooldown of quiet sweep rounds after any spill.
        """
        params = self.system.params
        if d.rebalance_cooldown > 0:
            d.rebalance_cooldown -= 1
            return
        shed_since = d.queries_shed - d.rebalance_shed_mark
        d.rebalance_shed_mark = d.queries_shed
        pressured = shed_since > 0
        if not pressured and params.directory_queue_limit > 0:
            pressured = (
                d.queue_depth(self.sim.now, params.directory_service_ms) > 0
            )
        if not pressured:
            # Quiet round: restart the window so counts track *current*
            # heat, not the whole run.
            d.fetch_counts.clear()
            return
        hot = top_gini_contributors(d.fetch_counts, params.rebalance_max_keys)
        sizes = self.system.sizes
        budget_kb = params.rebalance_budget_kb
        spilled = 0
        round_load: Dict[Address, int] = {}
        for key in hot:
            holders = d.providers_of(key)
            if not holders:
                continue
            cost_kb = (
                sizes.size_bytes(key) / 1024.0
                if sizes is not None
                else params.rebalance_nominal_kb
            )
            if cost_kb > budget_kb:
                continue
            target = self._rebalance_target(d, key, round_load)
            if target is None:
                continue
            budget_kb -= cost_kb
            spilled += 1
            round_load[target] = round_load.get(target, 0) + 1
            d.keys_rebalanced += 1
            self.system.rebalance_spills += 1
            self.system.rebalance_kb += cost_kb
            # The index lags pushes, so any single holder may have evicted
            # the key since it registered; hand the adopter a few candidate
            # sources to try in turn instead of betting on one.
            sources = sorted(holders)[:3]
            self.send(target, "flower.rebalance", key=key, sources=sources)
            if self.sim.tracing("flower.key_rebalanced"):
                self.sim.emit(
                    "flower.key_rebalanced",
                    directory=self.address,
                    key=key,
                    target=target,
                    source=sources[0],
                    count=d.fetch_counts.get(key, 0),
                )
        d.fetch_counts.clear()
        if spilled:
            d.rebalance_cooldown = params.rebalance_cooldown_rounds

    def _rebalance_target(
        self, d: DirectoryRole, key: ObjectKey, round_load: Dict[Address, int]
    ) -> Optional[Address]:
        """The coldest member not yet holding *key* (fewest indexed keys,
        ties broken by address -- deterministic).  *round_load* counts keys
        already assigned this pass so one pass fans out across several cold
        members instead of dog-piling the single coldest one."""
        holders = set(d.providers_of(key))
        candidates = [
            address
            for address in d.members.addresses()
            if address != self.address and address not in holders
        ]
        if not candidates:
            return None
        candidates.sort(
            key=lambda a: (len(d.member_keys.get(a, ())) + round_load.get(a, 0), a)
        )
        return candidates[0]

    def handle_flower_rebalance(self, message: Message) -> None:
        """Adopt a hot key our directory asked us to replicate.

        One-way and best-effort: fetch the object from one of the named
        holders over the ordinary ``flower.fetch`` path, cache it, and
        let the next push/summary propagate the new copy.  The directory
        index lags pushes, so each candidate source may have evicted the
        key by now -- try them in turn and drop the request if none still
        holds it (the directory retries on a later pressured sweep if the
        key stays hot).
        """
        if not self.system.params.rebalance or not self.alive:
            return
        payload = message.payload
        key = tuple(payload["key"])
        sources = [s for s in payload["sources"] if s != self.address]
        if key in self.store or self.directory is not None:
            return
        self._rebalance_fetch(key, sources)

    def _rebalance_fetch(self, key: ObjectKey, sources: List[Address]) -> None:
        if not sources or not self.alive or key in self.store:
            return
        source, rest = sources[0], sources[1:]

        def adopt(reply: Dict[str, Any]) -> None:
            if not reply.get("ok"):
                self._rebalance_fetch(key, rest)
                return
            if not self.alive or key in self.store:
                return
            _was_new, evicted = self.store.add_with_evictions(key)
            if evicted:
                if self.stream is not None:
                    self.stream.forget(
                        {index for ws, index in evicted if ws == self.website}
                    )
                self._on_evicted(evicted)
            self.system.rebalance_adoptions += 1
            self.summary.add(key)
            self._maybe_place_chunks(key)
            if self.sim.tracing("flower.key_adopted"):
                self.sim.emit(
                    "flower.key_adopted",
                    peer=self.address,
                    key=key,
                    source=source,
                )
            if self.dir_info is not None:
                self._push_to_directory()

        self.rpc(
            source,
            "flower.fetch",
            {"key": key},
            adopt,
            on_timeout=lambda: self._rebalance_fetch(key, rest),
        )

    def handle_flower_member_transfer(self, message: Message) -> Dict[str, Any]:
        """Adopt members an overloaded predecessor instance shed to us."""
        d = self.directory
        payload = message.payload
        if d is None or not self.alive or d.position_id != payload["position"]:
            return {"ok": False}
        for address, keys in payload["entries"]:
            if address != self.address:
                d.add_member(address, [tuple(key) for key in keys])
        return {"ok": True}

    def leave_directory_gracefully(self) -> None:
        """Voluntary departure of a directory peer (section 5.2.2): transfer
        a copy of the view and directory-index to a content peer, which
        joins D-ring in our place, then leave the ring.

        With replication enabled (section 5.3) the preferred heir is the
        member that already receives our replica syncs, and the handoff
        carries only a **delta** against the version it last acknowledged
        instead of the whole snapshot.
        """
        role = self.directory
        if role is None:
            return
        # Make sure the handoff carries the posting lists even when the
        # engine was installed after this role went live (satellite of
        # section 5.4: the heir must not rebuild the inverted index).
        self._attach_search(role)
        heir: Optional[Address] = None
        acked_base: Optional[int] = None
        replicator = self._replicator
        if replicator is not None and replicator.role is role:
            candidate = replicator.member_heir()
            if candidate is not None:
                heir = candidate
                acked_base = replicator.acked.get(candidate)
            replicator.stop()
            self._replicator = None
        if heir is None:
            sample = role.member_sample(self.rng, 1)
            heir = sample[0] if sample else None
        if role.chord is not None:
            role.chord.leave_gracefully()
        self.system.unregister_directory(self, role)
        self.directory = None
        if self._sweep_process is not None:
            self._sweep_process.cancel()
            self._sweep_process = None
        if heir is not None:
            if self._replication_on:
                if acked_base is not None:
                    sync = delta_sync_payload(role, self.address, acked_base)
                else:
                    sync = full_sync_payload(role, self.address)
                self.send(
                    heir,
                    "flower.handoff",
                    sync=sync,
                    website=role.website,
                    locality=role.locality,
                    instance=role.instance,
                    position=role.position_id,
                )
            else:
                self.send(
                    heir,
                    "flower.handoff",
                    snapshot=role.snapshot(),
                    website=role.website,
                    locality=role.locality,
                    instance=role.instance,
                    position=role.position_id,
                )
        self.sim.emit("flower.directory_left", peer=self.address)

    # =====================================================================
    # Warm failover and replication (section 5.3; robustness extension)
    # =====================================================================
    @property
    def _replication_on(self) -> bool:
        return self.system.params.replication_k > 0

    def _attach_search(self, role: Optional[DirectoryRole]) -> None:
        """Attach the system's keyword space to *role* (idempotent no-op
        when no search engine is configured).  Called lazily from every
        path that reads or ships posting lists, because tests and
        late-configured runs install ``system.search_engine`` after seed
        directories already exist."""
        engine = self.system.search_engine
        if engine is not None and role is not None:
            role.attach_search(engine.space)

    def _attach_replicator(self, role: DirectoryRole) -> None:
        """(Re)start the periodic replica-sync driver for *role*."""
        replicator = self._replicator
        if replicator is not None:
            if replicator.role is role and replicator.active:
                return
            replicator.stop()
        self._replicator = DirectoryReplicator(self, role)

    def _warm_takeover(self, role: DirectoryRole) -> None:
        """Seed a cold replacement role from replicas: our own store first
        (the member heir winning the race pays zero round trips), then the
        ring successors of the freshly (re)claimed position."""
        record = self.replica_store.get(role.position_id)
        if record is not None:
            self.replica_store.drop(role.position_id)
            self._merge_replica(
                role,
                record.members,
                record.member_keys,
                record.version,
                origin=record.origin,
                staleness_ms=self.sim.now - record.updated_at,
                source="local",
            )
        chord = role.chord
        if chord is None:
            return
        targets: List[Address] = []
        seen = {self.address}
        for ref in chord.successors:
            if len(targets) >= self.system.params.replication_k:
                break
            if ref.address in seen:
                continue
            seen.add(ref.address)
            targets.append(ref.address)
        for target in targets:
            self._fetch_replica(role, target)

    def _fetch_replica(self, role: DirectoryRole, target: Address) -> None:
        """Pull the replica of *role*'s position stored at *target*."""

        def on_reply(reply: Dict[str, Any], target=target) -> None:
            if self.directory is not role or not self.alive:
                return
            holder = reply.get("holder")
            if holder is not None and holder != self.address:
                self._resolve_slot_conflict(
                    role, holder, bool(reply.get("registered"))
                )
                return
            replica = reply.get("replica")
            if replica is not None:
                self._merge_replica_summary(role, replica, source=target)

        self.rpc(
            target,
            "flower.replica_fetch",
            {"position": role.position_id},
            on_reply,
            on_timeout=lambda: None,
        )

    def _merge_replica_summary(
        self, role: DirectoryRole, summary: Dict[str, Any], source: Address
    ) -> None:
        snapshot = summary["snapshot"]
        if snapshot["version"] <= role.version:
            return  # we already hold state at least this fresh
        members = {address: age for address, age in snapshot["members"]}
        member_keys = {
            address: [tuple(k) for k in keys]
            for address, keys in snapshot["member_keys"].items()
        }
        self._merge_replica(
            role,
            members,
            member_keys,
            snapshot["version"],
            origin=summary["origin"],
            staleness_ms=summary["staleness_ms"],
            source=source,
        )

    def _merge_replica(
        self,
        role: DirectoryRole,
        members: Dict[Address, int],
        member_keys: Dict[Address, List[ObjectKey]],
        version: int,
        origin: Address,
        staleness_ms: float,
        source: Any,
    ) -> None:
        """Fold replica state into *role* (per-entry age dominance)."""
        adopted = role.merge_remote(members, member_keys, version)
        self.sim.emit(
            "flower.replica_adopted",
            peer=self.address,
            position=role.position_id,
            website=role.website,
            locality=role.locality,
            instance=role.instance,
            version=version,
            origin=origin,
            adopted=adopted,
            members=role.load,
            staleness_ms=staleness_ms,
            source=source,
        )

    # --------------------------------------------- provisional (partitioned)
    def _activate_provisional(self, role: DirectoryRole) -> None:
        """Serve the slot without ring membership (partition-side takeover).

        The petal keeps a -- warm, if we held a replica -- directory during
        the cut; integration into D-ring is retried in the background until
        it succeeds or a conflicting claimant wins the reconciliation.
        """
        role.provisional = True
        role.chord = None
        self.directory = role
        self.system.register_directory(self, role)
        self._attach_search(role)
        self.dir_info = None
        self._dir_strikes = 0
        self._reprobe_pending = False
        self._pending_pushes.clear()
        params = self.system.params
        if self._sweep_process is None or not self._sweep_process.active:
            self._sweep_process = PeriodicProcess(
                self.sim,
                params.keepalive_period_ms,
                self._sweep_tick,
                initial_delay=params.keepalive_period_ms,
                jitter=0.05,
                rng=self.rng,
            )
        record = self.replica_store.get(role.position_id)
        if record is not None:
            self.replica_store.drop(role.position_id)
            self._merge_replica(
                role,
                record.members,
                record.member_keys,
                record.version,
                origin=record.origin,
                staleness_ms=self.sim.now - record.updated_at,
                source="local",
            )
        self.sim.emit(
            "flower.directory_provisional",
            peer=self.address,
            position=role.position_id,
            website=role.website,
            locality=role.locality,
            instance=role.instance,
        )
        self._attach_replicator(role)
        self._announce_directory(role)
        self._schedule_provisional_retry(role)

    def _schedule_provisional_retry(self, role: DirectoryRole) -> None:
        self.sim.schedule(
            4.0 * self.system.params.scan_retry_delay_ms,
            self._provisional_retry,
            role,
        )

    def _provisional_retry(self, role: DirectoryRole) -> None:
        """Re-announce and retry D-ring integration of a provisional role."""
        if not self.alive or self.directory is not role or not role.provisional:
            return
        if self._reconciling:
            self._schedule_provisional_retry(role)
            return
        self._announce_directory(role)
        node = ChordNode(self, self.system.ring, role.position_id)
        bootstrap = self.system.ring.random_bootstrap(self.rng)
        if bootstrap is None:
            node.create()
            self._promote_provisional(role, node)
            return
        role.chord = node  # answer ring traffic while the join is in flight

        def on_joined() -> None:
            self._promote_provisional(role, node)

        def on_failed(reason: str, holder: Optional[NodeRef]) -> None:
            node.shutdown()
            if self.directory is not role or not self.alive:
                return
            role.chord = None
            if holder is not None:
                # A registered holder exists: the ring is the arbiter
                # (section 5.2.2) -- merge our state into it and demote.
                self._reconcile_and_demote(role, holder.address)
            else:
                self._schedule_provisional_retry(role)

        node.join(bootstrap, on_joined, on_failed)

    def _promote_provisional(self, role: DirectoryRole, node: ChordNode) -> None:
        if not self.alive or self.directory is not role:
            node.shutdown()
            return
        role.chord = node
        role.provisional = False
        self._directory_role_active(role)

    # -------------------------------------------------- announce / conflicts
    def _announce_directory(
        self, role: DirectoryRole, targets: Optional[List[Address]] = None
    ) -> None:
        """Tell petal members (and view contacts) that we serve the slot.

        Short-circuits the hour-scale keepalive strike-out for members still
        pointing at the dead directory, and doubles as the discovery channel
        through which conflicting claimants (split brain) find each other
        and replica holders surface their copies.  Broadcast form is
        rate-limited to one fan-out per scan-retry delay.
        """
        if targets is None:
            now = self.sim.now
            if now - self._last_announce_ms < self.system.params.scan_retry_delay_ms:
                return
            self._last_announce_ms = now
            fanout = set(role.members.addresses()) | set(self.view.addresses())
            fanout.discard(self.address)
            targets = sorted(fanout)
        payload = {
            "position": role.position_id,
            "registered": role.chord is not None and not role.provisional,
        }
        for target in targets:
            self._send_announce(role, target, payload)

    def _send_announce(
        self, role: DirectoryRole, target: Address, payload: Dict[str, Any]
    ) -> None:
        def on_reply(reply: Dict[str, Any], target=target) -> None:
            if self.directory is not role or not self.alive:
                return
            conflict = reply.get("conflict")
            if conflict is not None and conflict != self.address:
                self._resolve_slot_conflict(
                    role, conflict, bool(reply.get("registered"))
                )
                return
            replica = reply.get("replica")
            if replica is not None:
                self._merge_replica_summary(role, replica, source=target)

        self.rpc(
            target,
            "flower.dir_announce",
            dict(payload),
            on_reply,
            on_timeout=lambda: None,
        )

    def _resolve_slot_conflict(
        self, role: DirectoryRole, other: Address, other_registered: bool
    ) -> None:
        """Two live claimants of one slot (split brain): decide who demotes.

        Deterministic rule: a ring-registered holder beats a provisional
        claimant (the ring is the arbiter, section 5.2.2); between two
        provisionals the smaller address wins.  Exactly one side demotes;
        the non-demoting side (re-)announces so the loser hears of it.
        """
        if self.directory is not role or not self.alive or other == self.address:
            return
        mine_registered = role.chord is not None and not role.provisional
        if mine_registered and not other_registered:
            self._announce_directory(role, targets=[other])
        elif other_registered and not mine_registered:
            self._reconcile_and_demote(role, other)
        elif not mine_registered and not other_registered:
            if other < self.address:
                self._reconcile_and_demote(role, other)
            else:
                self._announce_directory(role, targets=[other])
        # Both registered cannot happen: ChordRing.try_register arbitrates.

    def _reconcile_and_demote(self, role: DirectoryRole, winner: Address) -> None:
        """Send the winner our full state; demote once it confirms the merge.

        Never demote toward a peer that turns out dead or no longer a
        directory -- better a transient duplicate than adopting a corpse.
        """
        if self.directory is not role or self._reconciling or not self.alive:
            return
        self._reconciling = True
        payload = full_sync_payload(role, self.address)

        def on_reply(reply: Dict[str, Any]) -> None:
            self._reconciling = False
            if self.directory is not role or not self.alive:
                return
            if reply.get("status") == "merged":
                self._demote_role(role, winner)
            elif role.provisional:
                self._schedule_provisional_retry(role)

        def on_timeout() -> None:
            self._reconciling = False
            if self.directory is role and self.alive and role.provisional:
                self._schedule_provisional_retry(role)

        self.rpc(winner, "flower.slot_reconcile", payload, on_reply, on_timeout)

    def _demote_role(self, role: DirectoryRole, winner: Address) -> None:
        """Stop serving the slot; redirect our members (and ourselves) at
        the merge winner so they re-push and its index converges (I4)."""
        if self.directory is not role:
            return
        for member in role.members.addresses():
            if member != winner:
                self.send(
                    member,
                    "flower.dir_redirect",
                    position=role.position_id,
                    winner=winner,
                )
        if self._replicator is not None and self._replicator.role is role:
            self._replicator.stop()
            self._replicator = None
        if role.chord is not None:
            role.chord.shutdown()
            role.chord = None
        self.system.unregister_directory(self, role)
        self.directory = None
        if self._sweep_process is not None:
            self._sweep_process.cancel()
            self._sweep_process = None
        self.sim.emit(
            "flower.directory_demoted",
            peer=self.address,
            position=role.position_id,
            winner=winner,
        )
        if role.website == self.website and role.locality == self.locality:
            self.dir_info = DirInfo(role.position_id, winner, age=0)
            self._dir_strikes = 0
            self._reprobe_pending = False
            self._pending_pushes.clear()
            self._start_content_processes()
            self.store.reset_push_state()
            if len(self.store):
                self._push_to_directory()

    # ------------------------------------------------ replication handlers
    def handle_flower_replica_sync(self, message: Message) -> Dict[str, Any]:
        """Store (or merge) a directory's replicated state (section 5.3)."""
        if not self._replication_on or not self.alive:
            return {"status": "off"}
        payload = message.payload
        vector = payload.get("load_vector")
        if vector is not None and self.system.params.redirect_hints:
            self._harvest_load_vector(payload, vector)
        d = self.directory
        if d is not None and d.position_id == payload["position"]:
            # The origin still believes it owns a slot we now serve: absorb
            # its entries (per-entry dominance) and surface the conflict so
            # it starts the reconciliation.
            members = {a: age for a, age, _keys in payload.get("entries", ())}
            member_keys = {a: keys for a, _age, keys in payload.get("entries", ())}
            d.merge_remote(members, member_keys, payload["version"])
            return {
                "status": "conflict",
                "holder": self.address,
                "registered": d.chord is not None and not d.provisional,
            }
        return self.replica_store.accept(payload, self.sim.now)

    def handle_flower_replica_fetch(self, message: Message) -> Dict[str, Any]:
        """Hand our stored replica of a position to its new claimant."""
        if not self._replication_on or not self.alive:
            return {"replica": None}
        position = message.payload["position"]
        d = self.directory
        if d is not None and d.position_id == position:
            return {
                "replica": None,
                "holder": self.address,
                "registered": d.chord is not None and not d.provisional,
            }
        record = self.replica_store.get(position)
        return {
            "replica": record.summary(self.sim.now) if record is not None else None
        }

    def handle_flower_dir_announce(self, message: Message) -> Dict[str, Any]:
        """A (possibly provisional) claimant announced it serves a slot."""
        if not self._replication_on or not self.alive:
            return {}
        payload = message.payload
        position = payload["position"]
        reply: Dict[str, Any] = {}
        record = self.replica_store.get(position)
        if record is not None:
            reply["replica"] = record.summary(self.sim.now)
        d = self.directory
        if d is not None:
            if d.position_id == position:
                reply["conflict"] = self.address
                reply["registered"] = d.chord is not None and not d.provisional
                self._resolve_slot_conflict(
                    d, message.src, bool(payload.get("registered"))
                )
            return reply
        if self.system.key_service.petal_of(position) != (
            self.website,
            self.locality,
        ):
            return reply
        info = self.dir_info
        if info is not None and info.position_id != position:
            return reply
        # Adopt the announcer when we have no directory, when it merely
        # re-announces itself, when it is ring-registered (authoritative),
        # or when our current directory is suspect -- but never steal a
        # member from a healthy registered directory for a provisional one.
        if (
            info is None
            or info.address == message.src
            or bool(payload.get("registered"))
            or self._dir_suspect
        ):
            changed = info is None or info.address != message.src
            self.dir_info = DirInfo(position, message.src, age=0)
            self._dir_strikes = 0
            self._reprobe_pending = False
            self._pending_pushes.clear()
            self._start_content_processes()
            if changed:
                self.store.reset_push_state()
                if len(self.store):
                    self._push_to_directory()
        return reply

    def handle_flower_slot_reconcile(self, message: Message) -> Dict[str, Any]:
        """A demoting claimant hands us its state: merge per-entry."""
        if not self._replication_on or not self.alive:
            return {"status": "not_directory"}
        payload = message.payload
        d = self.directory
        if d is None or d.position_id != payload["position"]:
            return {"status": "not_directory"}
        members = {a: age for a, age, _keys in payload.get("entries", ())}
        member_keys = {a: keys for a, _age, keys in payload.get("entries", ())}
        adopted = d.merge_remote(members, member_keys, payload["version"])
        self.sim.emit(
            "flower.slot_merged",
            peer=self.address,
            position=d.position_id,
            origin=message.src,
            adopted=adopted,
            version=d.version,
        )
        return {"status": "merged", "version": d.version, "adopted": adopted}

    def handle_flower_dir_redirect(self, message: Message) -> None:
        """Our directory demoted: re-point at the merge winner and re-push."""
        if not self._replication_on or not self.alive or self.directory is not None:
            return None
        payload = message.payload
        winner = payload["winner"]
        if winner == self.address:
            return None
        info = self.dir_info
        if info is not None and info.position_id != payload["position"]:
            return None
        if info is None or info.address != winner:
            self.dir_info = DirInfo(payload["position"], winner, age=0)
            self._dir_strikes = 0
            self._reprobe_pending = False
            self._pending_pushes.clear()
            self._start_content_processes()
            self.store.reset_push_state()
            if len(self.store):
                self._push_to_directory()
        return None

    def handle_flower_member_shed(self, message: Message) -> None:
        """Our overloaded directory shed us to another instance: re-point
        dir-info at it and re-push so its index reflects our cache."""
        if not self.alive or self.directory is not None or self._recovering:
            return None
        payload = message.payload
        new_address = payload["address"]
        if new_address == self.address:
            return None
        info = self.dir_info
        if (
            info is not None
            and info.address == new_address
            and info.position_id == payload["position"]
        ):
            return None  # already pointed there
        self.dir_info = DirInfo(payload["position"], new_address, age=0)
        self._dir_strikes = 0
        self._reprobe_pending = False
        self._pending_pushes.clear()
        self._start_content_processes()
        self.store.reset_push_state()
        if len(self.store):
            self._push_to_directory()
        return None

    # =====================================================================
    # Message handlers (directory side)
    # =====================================================================
    def handle_flower_query(self, message: Message) -> Dict[str, Any]:
        """Directory-side query processing (sections 3.2 and 4).

        With ``directory_queue_limit > 0`` every request first passes the
        bounded admission queue: a request finding the virtual backlog at
        the limit is **shed** with an explicit status (plus a redirect to
        the next instance when one exists) instead of piling up, and an
        admitted request's reply carries the queue wait it owes its
        client.  The queue is two-class: foreign collaboration scans
        (section 3.2) shed at the lower ``foreign_limit`` bound, so under
        pressure this petal's own members always outrank another petal's
        misses.  With the limit at 0 none of this code runs and replies
        are byte-identical to the ungated build.
        """
        d = self.directory
        if d is None:
            return {"status": "not_directory"}
        payload = message.payload
        key = tuple(payload["key"]) if payload.get("key") is not None else None
        d.queries_handled += 1
        params = self.system.params
        queue_wait_ms = 0.0
        if params.directory_queue_limit > 0:
            admitted, queue_wait_ms, depth = d.admit(
                self.sim.now,
                params.directory_service_ms,
                params.directory_queue_limit,
                foreign=bool(payload.get("foreign")),
            )
            if not admitted:
                return self._shed_query(d, message.src, key, depth)
        reply = self._process_query(d, message, payload, key, params)
        if queue_wait_ms > 0.0:
            reply["queue_wait_ms"] = queue_wait_ms
        hint = self._load_hint(d)
        if hint is not None:
            reply["load_hint"] = hint
        return reply

    def _shed_query(
        self,
        d: DirectoryRole,
        client: Address,
        key: Optional[ObjectKey],
        depth: int,
    ) -> Dict[str, Any]:
        """Reject one request at the admission limit (explicit, accounted).

        The reply names the next instance when the key service knows one,
        so the client can fail over without a ring scan.  Under
        ``overload_shedding`` a shed also nudges the PetalUp split: a
        queue at its bound is the rate-based overload signal the paper's
        member-count test cannot see.
        """
        self.system.shed_queries += 1
        redirect = self._next_instance_address(d)
        if self.sim.tracing("flower.query_shed"):
            self.sim.emit(
                "flower.query_shed",
                directory=self.address,
                client=client,
                key=key,
                position=d.position_id,
                depth=depth,
                redirect=redirect,
            )
        if self.system.params.overload_shedding:
            self._maybe_promote_next(d)
        reply: Dict[str, Any] = {"status": "shed"}
        if redirect is not None:
            reply["redirect"] = redirect
        hint = self._load_hint(d)
        if hint is not None:
            reply["load_hint"] = hint
        return reply

    def _process_query(
        self,
        d: DirectoryRole,
        message: Message,
        payload: Dict[str, Any],
        key: Optional[ObjectKey],
        params,
    ) -> Dict[str, Any]:
        if payload.get("foreign"):
            # A sibling directory's miss (collaboration): answer from our
            # index/store only; no registration.  On a miss, point the
            # client at the next same-website neighbour so it can continue
            # the walk.
            provider = self._directory_provider(d, key, exclude={message.src})
            if provider is not None:
                if params.rebalance:
                    d.note_fetch(key)
                reply = {"status": "provider", "provider": provider}
                hints = self._provider_hints(d, key, {message.src, provider})
                if hints is not None:
                    reply["providers"] = hints
                return reply
            return {"status": "miss", "sibling_address": self._sibling_address(d)}

        if payload.get("new_client"):
            if d.overloaded(params.directory_load_limit):
                next_address = self._next_instance_address(d)
                if next_address is not None:
                    return {"status": "scan", "next_address": next_address}
                # We are the final instance: trigger the PetalUp split and
                # process this client ourselves (section 4).
                self._maybe_promote_next(d)
            keys = payload.get("keys", [])
            d.add_member(message.src, [tuple(k) for k in keys])
            reply = self._registration_payload(d, message.src)
        elif payload.get("member"):
            if d.has_member(message.src):
                d.touch_member(message.src)
            else:
                d.add_member(message.src)
            reply = {}
        else:
            reply = {}

        if payload.get("register_only") or key is None:
            reply["status"] = "registered"
            return reply

        provider = self._directory_provider(d, key, exclude={message.src})
        if provider is not None:
            if params.rebalance:
                d.note_fetch(key)
            reply["status"] = "provider"
            reply["provider"] = provider
            hints = self._provider_hints(d, key, {message.src, provider})
            if hints is not None:
                reply["providers"] = hints
        else:
            reply["status"] = "miss"
            if params.directory_collaboration:
                sibling = self._sibling_address(d)
                if sibling is not None:
                    reply["sibling_address"] = sibling
        return reply

    def _directory_provider(
        self,
        d: DirectoryRole,
        key: ObjectKey,
        exclude: Set[Address],
    ) -> Optional[Address]:
        provider = d.pick_provider(key, self.rng, exclude=exclude)
        if provider is not None:
            return provider
        if key in self.store and self.address not in exclude:
            return self.address
        # Fall back to content summaries gossip-collected while we were a
        # plain content peer (fresh replacement directories rely on this).
        for address, summary in self.peer_summaries.items():
            if address not in exclude and summary.contains(key):
                return address
        return None

    def _registration_payload(self, d: DirectoryRole, joiner: Address) -> Dict[str, Any]:
        sample = d.member_sample(self.rng, self.system.params.gossip_shuffle_size)
        if len(sample) < self.system.params.gossip_shuffle_size:
            # Fresh instances hand out their legacy content view instead
            # ("provides them with a subset of its old view" -- section 4).
            legacy = self.view.sample(
                self.rng,
                self.system.params.gossip_shuffle_size - len(sample),
                exclude=set(sample) | {joiner},
            )
            sample.extend(contact.address for contact in legacy)
        reply = {
            "dir_position": d.position_id,
            "dir_address": self.address,
            "view_sample": [a for a in sample if a != joiner],
        }
        hint = self._search_replica_hint(d)
        if hint is not None:
            reply["search_replicas"] = hint
        load = self._load_hint(d)
        if load is not None:
            reply["load_hint"] = load
        return reply

    def _next_instance_address(self, d: DirectoryRole) -> Optional[Address]:
        """Address of d(ws, loc, instance+1), if it exists.

        Successive identifiers make the next instance our ring successor,
        so no lookup is needed -- the point of the key management service.
        """
        if d.instance + 1 >= self.system.params.max_instances:
            return None
        next_position = self.system.key_service.position_id(
            d.website, d.locality, d.instance + 1
        )
        chord = d.chord
        if chord is not None and chord.successor is not None:
            if chord.successor.id == next_position:
                return chord.successor.address
        return None

    def _sibling_address(self, d: DirectoryRole) -> Optional[Address]:
        """The next same-website directory on D-ring (collaboration walk).

        Successive identifiers put every directory of one website on a
        contiguous arc, so "the next sibling" is simply our ring successor
        while it still decodes to the same website.
        """
        chord = d.chord
        if chord is None or chord.successor is None:
            return None
        succ = chord.successor
        if succ.address != self.address and self.system.key_service.same_website(
            succ.id, d.position_id
        ):
            return succ.address
        return None

    def _maybe_promote_next(self, d: DirectoryRole) -> None:
        """PetalUp split: ask one of our content peers to become d_{i+1}.

        Under ``overload_shedding`` the split is *replica-aware*: instead
        of standing up an empty instance that new clients discover one
        section-4 scan at a time, the promotion payload carries a member
        **partition** (every second member, in address order) in the warm
        snapshot format of section 5.3.  The new instance adopts it before
        joining the ring and, once active, tells each partition member to
        re-point at it -- so both instances start half-loaded and no
        member ever scans.
        """
        if d.promoting or d.instance + 1 >= self.system.params.max_instances:
            return
        candidates = d.member_sample(self.rng, 1)
        if not candidates:
            return
        target = candidates[0]
        d.promoting = True
        next_position = self.system.key_service.position_id(
            d.website, d.locality, d.instance + 1
        )
        partition: List[Address] = []
        if self.system.params.overload_shedding:
            partition = sorted(
                c.address for c in d.members.contacts() if c.address != target
            )[1::2]

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("accepted"):
                # "The replacing content peer is then removed from the
                # directory-index of d_i" (section 4).
                d.remove_member(target)
                for member in partition:
                    # Optimistic: the new instance notifies the members
                    # once active; until then their keepalives simply
                    # re-add them here (self-healing either way).
                    d.remove_member(member)
                d.members_shed += len(partition)
                self.system.members_shed += len(partition)
            # Allow another attempt later either way; if the promotion
            # succeeded our successor pointer will show it.
            self.sim.schedule(
                self.system.params.scan_retry_delay_ms, self._reset_promoting, d
            )

        def on_timeout() -> None:
            d.promoting = False
            d.remove_member(target)

        payload: Dict[str, Any] = {
            "website": d.website,
            "locality": d.locality,
            "instance": d.instance + 1,
            "position": next_position,
        }
        if self._replication_on:
            # Seed the new instance with a warm copy of our own index so a
            # split starts with full knowledge of the petal (section 5.3).
            payload["replica"] = full_sync_payload(d, self.address)
        if partition:
            ages = {c.address: c.age for c in d.members.contacts()}
            payload["partition"] = {
                "version": 0,
                "members": [(member, ages.get(member, 0)) for member in partition],
                "member_keys": {
                    member: sorted(d.member_keys.get(member, ()))
                    for member in partition
                    if d.member_keys.get(member)
                },
            }
        self.rpc(target, "flower.promote", payload, on_reply, on_timeout)

    def _reset_promoting(self, d: DirectoryRole) -> None:
        d.promoting = False

    def handle_flower_promote(self, message: Message) -> Dict[str, Any]:
        """A directory asks us to become the next instance (PetalUp).

        A ``partition`` in the payload (replica-aware split, overload
        extension) is adopted as our starting snapshot, and its members
        are notified to re-point at us once the role is actually active
        -- notifying earlier would race their pushes against our ring
        join.
        """
        if self.directory is not None or self._recovering or not self.alive:
            return {"accepted": False}
        payload = message.payload
        replica = payload.get("replica")
        if replica is not None and self._replication_on:
            self.replica_store.accept(replica, self.sim.now)
        partition = payload.get("partition")
        if partition is not None and self.system.params.overload_shedding:
            self._shed_notices = (
                payload["position"],
                [address for address, _age in partition.get("members", [])],
            )
        self._begin_directory_role(
            payload["website"],
            payload["locality"],
            payload["instance"],
            payload["position"],
            snapshot=partition if self.system.params.overload_shedding else None,
        )
        return {"accepted": True}

    def handle_flower_handoff(self, message: Message) -> None:
        """Receive a leaving directory's state and take its place."""
        if self.directory is not None or self._recovering or not self.alive:
            return None
        payload = message.payload
        snapshot = payload.get("snapshot")
        sync = payload.get("sync")
        if sync is not None and self._replication_on:
            # Delta handoff (section 5.3): apply the leaving directory's
            # delta on top of whatever replica we already hold, then adopt
            # the reconstructed state as our own starting snapshot.
            record = self.replica_store.get(sync["position"])
            if record is None:
                record = ReplicaRecord(sync, self.sim.now)
            else:
                record.apply(sync, self.sim.now)
            snapshot = record.to_snapshot()
            self.replica_store.drop(sync["position"])
        self._begin_directory_role(
            payload["website"],
            payload["locality"],
            payload["instance"],
            payload["position"],
            snapshot=snapshot,
        )
        return None

    def handle_flower_fetch(self, message: Message) -> Dict[str, Any]:
        """Serve an object from our cache to a petal member."""
        key = tuple(message.payload["key"])
        ok = key in self.store
        if ok:
            self.fetches_served += 1
        return {"ok": ok}

    # =====================================================================
    # Chunked swarming transfers (repro.cdn.swarm; inert unless swarming)
    # =====================================================================
    def _provider_hints(
        self, d: DirectoryRole, key: ObjectKey, exclude: Set[Address]
    ) -> Optional[List[Address]]:
        """Extra full-object holders for a swarming downloader, or None.

        Only computed (and only shipped on the wire) when swarming is on,
        so paper-faithful replies stay byte-identical.
        """
        params = self.system.params
        if not params.swarming:
            return None
        others = d.providers_of(key) - exclude
        if not others:
            return None
        return sorted(others)[: params.swarm_sources]

    def handle_swarm_manifest(self, message: Message) -> Dict[str, Any]:
        """Name the chunks we hold plus other holders we know of."""
        sizes = self.system.sizes
        if sizes is None:
            return {"ok": False}
        key = tuple(message.payload["key"])
        if key in self.store:
            have = list(range(sizes.chunk_count(key)))
        else:
            held = self.chunk_holdings.get(key)
            have = sorted(held) if held else []
        if not have:
            return {"ok": False}
        reply: Dict[str, Any] = {"ok": True, "have": have}
        hints = self._swarm_hints.get(key)
        if hints:
            reply["also"] = [a for a in hints if a != message.src]
        return reply

    def handle_swarm_chunk(self, message: Message) -> Dict[str, Any]:
        """Agree to upload one chunk (payload timing is the caller's flow)."""
        sizes = self.system.sizes
        if sizes is None:
            return {"ok": False}
        key = tuple(message.payload["key"])
        chunk = message.payload["chunk"]
        if not 0 <= chunk < sizes.chunk_count(key):
            return {"ok": False}
        held = key in self.store or chunk in self.chunk_holdings.get(key, ())
        if not held:
            return {"ok": False}
        self.bytes_uploaded += sizes.chunk_size(key, chunk)
        return {"ok": True}

    def handle_swarm_place(self, message: Message) -> None:
        """Accept a chunk-replica placement from a full-object holder."""
        sizes = self.system.sizes
        if sizes is None:
            return
        key = tuple(message.payload["key"])
        if key in self.store:
            return  # already a full holder; partial state would be noise
        held = self.chunk_holdings.get(key)
        if held is None:
            if len(self.chunk_holdings) >= SWARM_HOLDINGS_LIMIT:
                evicted = next(iter(self.chunk_holdings))
                del self.chunk_holdings[evicted]
                self._swarm_hints.pop(evicted, None)
            held = self.chunk_holdings[key] = set()
        count = sizes.chunk_count(key)
        held.update(i for i in message.payload["chunks"] if 0 <= i < count)
        # The placer has the whole object: remember it as a holder hint.
        hints = self._swarm_hints.setdefault(key, [])
        if message.src not in hints and len(hints) < self.system.params.swarm_sources:
            hints.append(message.src)
        return

    def _maybe_place_chunks(self, key: ObjectKey) -> None:
        """After caching a chunked object, place k chunk replicas.

        Round-robin slices to the first k live view contacts (sorted, so
        the spread is deterministic); the recipients become the ``also``
        hints of our future manifest replies.
        """
        params = self.system.params
        sizes = self.system.sizes
        if not params.swarming or params.swarm_replicate < 1 or sizes is None:
            return
        if key in self._placed or key not in self.store:
            return
        count = sizes.chunk_count(key)
        if count < 2:
            return
        contacts = sorted(a for a in self.view.addresses() if a != self.address)
        if not contacts:
            return
        k = min(params.swarm_replicate, len(contacts))
        targets = contacts[:k]
        self._placed.add(key)
        hints = self._swarm_hints.setdefault(key, [])
        for j, target in enumerate(targets):
            chunks = [i for i in range(count) if i % k == j]
            self.send(target, "swarm.place", key=key, chunks=chunks)
            if target not in hints and len(hints) < params.swarm_sources:
                hints.append(target)

    def handle_flower_push(self, message: Message) -> Dict[str, Any]:
        """Apply a member's content push to the directory-index."""
        d = self.directory
        if d is None:
            return {"status": "not_directory"}
        keys = [tuple(k) for k in message.payload.get("keys", [])]
        if d.has_member(message.src):
            d.touch_member(message.src)
            d.update_member_keys(message.src, keys)
        else:
            d.add_member(message.src, keys)
        reply: Dict[str, Any] = {"status": "ok"}
        hint = self._search_replica_hint(d)
        if hint is not None:
            reply["search_replicas"] = hint
        load = self._load_hint(d)
        if load is not None:
            reply["load_hint"] = load
        return reply

    def handle_flower_keepalive(self, message: Message) -> Dict[str, Any]:
        """Refresh (or re-admit) a member on keepalive (section 5.1)."""
        d = self.directory
        if d is None:
            return {"status": "not_directory"}
        if d.has_member(message.src):
            d.touch_member(message.src)
        else:
            d.add_member(message.src)
        reply: Dict[str, Any] = {"status": "ok"}
        hint = self._search_replica_hint(d)
        if hint is not None:
            reply["search_replicas"] = hint
        load = self._load_hint(d)
        if load is not None:
            reply["load_hint"] = load
        return reply

    # =====================================================================
    # Keyword search extension (paper section 7 future work; optional)
    # =====================================================================
    @property
    def search_probe_target(self) -> bool:
        """Eligible for a search probe: in a petal now, or orphaned from
        one (its directory declared failed) -- orphans must keep counting
        toward an outage instead of silently leaving the denominator."""
        return self.alive and (
            self.directory is not None
            or self.dir_info is not None
            or self._search_position is not None
        )

    def _search_replica_hint(self, d: DirectoryRole) -> Optional[Dict[str, Any]]:
        """Failover plan piggybacked on directory replies (section 5.4):
        the slot position plus the replica holders currently synced.  None
        while no search engine runs, so plain builds ship nothing."""
        if self.system.search_engine is None:
            return None
        replicator = self._replicator
        targets: List[Address] = []
        if replicator is not None and replicator.role is d:
            # Only holders that acknowledged a sync: an intended target
            # that never acked has nothing to serve, and pointing peers
            # at it would turn the failover into guaranteed misses.
            acked = replicator.acked
            targets = [a for a in replicator.targets() if a in acked]
        # A small member sample rides along as a last-resort chain: the
        # smallest addresses include the member heir, so even a peer with
        # a stale replica hint and an empty gossip view can still reach
        # the one petal-mate guaranteed to be a replica target.
        members = sorted(d.members.addresses())[:_SEARCH_VIEW_CANDIDATES]
        return {
            "position": d.position_id,
            "replicas": targets,
            "members": members,
        }

    def _harvest_search_replicas(self, payload: Dict[str, Any]) -> None:
        """Remember the failover plan carried by a directory reply."""
        hint = payload.get("search_replicas")
        if hint is not None:
            self._search_position = hint["position"]
            self._search_replicas = [
                address for address in hint["replicas"] if address != self.address
            ]
            self._search_members = [
                address
                for address in hint.get("members", ())
                if address != self.address
            ]

    def _load_hint(self, d: DirectoryRole) -> Optional[List[tuple]]:
        """Per-petal load vector piggybacked on directory replies.

        Own queue depth plus sibling-instance depths learnt over the
        replica-sync gossip, each row ``(address, depth, age_ms)``.  None
        unless redirect hints (and the admission queue they read) are on,
        so plain builds ship byte-identical replies."""
        params = self.system.params
        if not params.redirect_hints or params.directory_queue_limit < 1:
            return None
        return d.load_vector(self.sim.now, params.directory_service_ms)

    def _harvest_load_vector(
        self, payload: Dict[str, Any], vector: List[tuple]
    ) -> None:
        """Absorb the load vector gossiped over a replica sync.

        A sibling instance of the same petal folds the rows into its own
        directory-side picture (so its replies re-export them); an
        ordinary member of that petal treats them like reply-piggybacked
        hints."""
        now = self.sim.now
        d = self.directory
        petal = (payload.get("website"), payload.get("locality"))
        if (
            d is not None
            and (d.website, d.locality) == petal
            and d.position_id != payload.get("position")
        ):
            for address, depth, age_ms in vector:
                if address != self.address:
                    d.note_peer_load(address, depth, now - age_ms)
        elif d is None and (self.website, self.locality) == petal:
            for address, depth, age_ms in vector:
                self._note_petal_load(address, depth, now - age_ms)

    def handle_flower_search(self, message: Message) -> Dict[str, Any]:
        """Answer a petal keyword search from the directory-index."""
        engine = self.system.search_engine
        d = self.directory
        if engine is None or d is None:
            return {"status": "not_directory"}
        self._attach_search(d)
        matches = engine.search_index(
            d.index, self.store.keys(), self.address, message.payload["keyword"]
        )
        reply: Dict[str, Any] = {
            "status": "ok",
            "matches": [(tuple(k), a) for k, a in matches],
        }
        hint = self._search_replica_hint(d)
        if hint is not None:
            reply["search_replicas"] = hint
        return reply

    def handle_flower_search_replica(self, message: Message) -> Dict[str, Any]:
        """Scoped failover search (section 5.4): answer for a directory
        slot we replicate -- or serve authoritatively when we turned out
        to be the slot's (possibly provisional) directory ourselves."""
        engine = self.system.search_engine
        if engine is None or not self.alive:
            return {"status": "off"}
        payload = message.payload
        position = payload["position"]
        keyword = payload["keyword"]
        d = self.directory
        if d is not None and d.position_id == position:
            self._attach_search(d)
            matches = engine.search_index(
                d.index, self.store.keys(), self.address, keyword
            )
            return {
                "status": "ok",
                "source": "takeover",
                "staleness_ms": 0.0,
                "matches": [(tuple(k), a) for k, a in matches],
            }
        record = self.replica_store.get(position)
        if record is None:
            return {"status": "no_replica"}
        matches = record.search_matches(engine.space, keyword, engine.max_results)
        return {
            "status": "ok",
            "source": "replica",
            "staleness_ms": self.sim.now - record.updated_at,
            "matches": [(k, a) for k, a in matches],
        }

    def search(self, keyword: str, on_results) -> None:
        """Find petal members holding objects about *keyword*.

        Requires ``system.search_engine`` to be set (see
        :mod:`repro.cdn.flower.search`).  A directory peer answers from its
        own index; a content peer asks its directory; an unregistered peer
        gets no results.  When the directory is suspect, times out or
        denies, the query fails over to the slot's replica holders (the
        member heir and the k ring successors learned from earlier
        replies), accepting replica answers only within the declared
        staleness bound.  Every completion is accounted through one
        ``flower.search_done`` event stamped with its source.
        """
        engine = self.system.search_engine
        if engine is None:
            raise CDNError("keyword search requires system.search_engine")
        d = self.directory
        if d is not None:
            self._attach_search(d)
            matches = engine.search_index(
                d.index, self.store.keys(), self.address, keyword
            )
            self._finish_search(keyword, matches, "local", 0.0, on_results)
            return
        info = self.dir_info
        if info is None:
            if self._search_position is None:
                self._finish_search(keyword, [], "unregistered", 0.0, on_results)
            else:
                # Orphaned mid-failure: the directory was declared dead and
                # no replacement adopted yet -- go straight to replicas.
                self._search_failover(
                    keyword, self._search_failover_plan(), on_results
                )
            return
        if self._dir_suspect:
            self._search_failover(keyword, self._search_failover_plan(), on_results)
            return

        def on_reply(payload: Dict[str, Any]) -> None:
            if not self.alive:
                return
            if payload.get("status") != "ok":
                self._search_failover(
                    keyword, self._search_failover_plan(), on_results
                )
                return
            info.age = 0
            self._harvest_search_replicas(payload)
            self._note_directory_alive(info)
            self._finish_search(
                keyword,
                [(tuple(key), address) for key, address in payload["matches"]],
                "directory",
                0.0,
                on_results,
            )

        def on_give_up() -> None:
            if not self.alive:
                return
            self._on_directory_strike(info)
            self._search_failover(keyword, self._search_failover_plan(), on_results)

        self._directory_rpc(
            info, "flower.search", {"keyword": keyword}, on_reply, on_give_up
        )

    def _search_failover_plan(self) -> List[Address]:
        """Candidate chain for a failed-over search: the hinted replica
        holders (member heir first, then ring successors), extended with
        our freshest petal-mates from the gossip view.  The view catches
        the cases a stale hint cannot: the heir may have died since the
        hint was harvested, but a petal-mate that since promoted (warm
        takeover or provisional claim) answers the slot directly."""
        plan = list(self._search_replicas)
        seen = set(plan)
        seen.add(self.address)
        for address in self._search_members:
            if address not in seen:
                seen.add(address)
                plan.append(address)
        contacts = sorted(
            self.view.contacts(), key=lambda c: (c.age, c.address)
        )
        extras = 0
        for contact in contacts:
            if extras >= _SEARCH_VIEW_CANDIDATES:
                break
            if contact.address in seen:
                continue
            seen.add(contact.address)
            plan.append(contact.address)
            extras += 1
        return plan

    def _search_failover(
        self, keyword: str, candidates: List[Address], on_results
    ) -> None:
        """Walk the known replica holders of our slot (member heir first,
        then ring successors) until one answers within the staleness
        bound; our own replica store is consulted first (the heir itself
        pays zero round trips)."""
        engine = self.system.search_engine
        position = self._search_position
        if engine is None or position is None:
            self._finish_search(keyword, [], "none", 0.0, on_results)
            return
        bound = staleness_bound_ms(self.system.params)
        record = self.replica_store.get(position)
        if record is not None:
            staleness = self.sim.now - record.updated_at
            if staleness <= bound:
                matches = record.search_matches(
                    engine.space, keyword, engine.max_results
                )
                self._finish_search(
                    keyword, matches, "replica", staleness, on_results
                )
                return
        while candidates and candidates[0] == self.address:
            candidates = candidates[1:]
        if not candidates:
            self._finish_search(keyword, [], "none", 0.0, on_results)
            return
        target, rest = candidates[0], candidates[1:]
        params = self.system.params

        def on_reply(payload: Dict[str, Any]) -> None:
            if not self.alive:
                return
            if payload.get("status") == "ok":
                staleness = float(payload.get("staleness_ms", 0.0))
                if staleness <= bound:
                    self._finish_search(
                        keyword,
                        [(tuple(key), address) for key, address in payload["matches"]],
                        payload.get("source", "replica"),
                        staleness,
                        on_results,
                    )
                    return
            self._search_failover(keyword, rest, on_results)

        self.retrying_rpc(
            target,
            "flower.search_replica",
            {"position": position, "keyword": keyword},
            on_reply=on_reply,
            on_give_up=lambda: self._search_failover(keyword, rest, on_results),
            retries=params.rpc_retries,
            backoff_ms=params.rpc_backoff_ms,
        )

    def _finish_search(
        self,
        keyword: str,
        matches: List,
        source: str,
        staleness_ms: float,
        on_results,
    ) -> None:
        """Deliver results and account the completion (one event per
        search, stamped with how -- and how stale -- it was answered)."""
        sim = self.sim
        if sim.tracing("flower.search_done"):
            sim.emit(
                "flower.search_done",
                peer=self.address,
                website=self.website,
                locality=self.locality,
                keyword=keyword,
                matches=len(matches),
                source=source,
                staleness_ms=staleness_ms,
            )
        on_results(matches)
