"""Keyword search within petals (the paper's future work, section 7).

The paper closes with: "In the future, we plan to explore sophisticated
search functionalities wrt. semantic and personalized search."  This module
implements the natural first step on top of Flower-CDN's existing
machinery: *keyword* search resolved by the petal's directory peer.

Model: every object carries a small deterministic set of keywords (standing
in for extracted content terms).  A directory peer already knows which
member holds which object (the directory-index); inverting it by keyword
answers "who in my petal has anything about K?" with zero extra protocol
state -- the index keeps itself fresh through the usual push/expiry
maintenance, so search inherits Flower-CDN's churn robustness for free.

With warm directory failover enabled (section 5.3, ``replication_k > 0``)
search additionally inherits the *replicated* posting lists that ride the
versioned sync channel: when the directory is suspect or a search times
out, the content peer retries against the replica holders it learned from
its directory (the heir plus the k D-ring successors), accepting answers
only while their staleness stays under :func:`staleness_bound_ms`.

Usage::

    system.search_engine = KeywordSearchEngine(KeywordSpace(num_keywords=50))
    peer.search("kw7", on_results)   # content peers ask their directory;
                                     # directory peers answer locally
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import CDNError
from repro.sim.process import PeriodicProcess
from repro.types import Address, ObjectKey

#: One search result: (object key, address of a provider).
SearchMatch = Tuple[ObjectKey, Address]

SearchCallback = Callable[[List[SearchMatch]], None]

#: Bound on the memoized object -> keywords mapping (entries, LRU evicted).
#: Far above any catalog the experiments build, so in practice the cache
#: converges to "compute each object's digest exactly once per space".
_KEYWORD_CACHE_SIZE = 65536


def staleness_bound_ms(params) -> float:
    """Declared bound on the age of replica-served search results.

    A replica may lag its directory by up to ``anti_entropy_rounds`` sync
    periods (delta rejections force a full only on the anti-entropy
    round), and the client may take ``dir_failure_threshold`` strike
    periods to even start failing over; two more periods absorb transport
    retries and the takeover race.  Replica answers older than this are
    discarded by the querier and flagged by the chaos auditor (I7).
    """
    return params.keepalive_period_ms * (
        params.replication_anti_entropy_rounds + params.dir_failure_threshold + 2
    )


class KeywordSpace:
    """Deterministic object -> keywords mapping.

    Stands in for real content-derived terms: every object gets between
    ``min_keywords`` and ``max_keywords`` keywords chosen by hashing, so all
    peers agree on the mapping without exchanging metadata.
    """

    def __init__(
        self,
        num_keywords: int = 50,
        min_keywords: int = 1,
        max_keywords: int = 3,
    ) -> None:
        if num_keywords < 1:
            raise CDNError("need at least one keyword")
        if not 1 <= min_keywords <= max_keywords:
            raise CDNError("need 1 <= min_keywords <= max_keywords")
        self.num_keywords = num_keywords
        self.min_keywords = min_keywords
        self.max_keywords = max_keywords
        #: sha256 per lookup is measurable on the query/search hot path;
        #: the mapping is immutable, so memoize it.  ``frozenset`` keeps
        #: cached values safe to share across callers.
        self._cache: "OrderedDict[ObjectKey, FrozenSet[str]]" = OrderedDict()
        self._cache_capacity = _KEYWORD_CACHE_SIZE

    def all_keywords(self) -> List[str]:
        """Every keyword in the space."""
        return [f"kw{i}" for i in range(self.num_keywords)]

    def keywords_of(self, key: ObjectKey) -> FrozenSet[str]:
        """The object's keywords (deterministic, stable everywhere)."""
        cache = self._cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            return cached
        digest = hashlib.sha256(f"kw:{key[0]}:{key[1]}".encode()).digest()
        count = self.min_keywords + digest[0] % (
            self.max_keywords - self.min_keywords + 1
        )
        chosen = set()
        position = 1
        while len(chosen) < count:
            chunk = digest[position: position + 2]
            if len(chunk) < 2:  # pragma: no cover - 32-byte digest suffices
                break
            chosen.add(f"kw{int.from_bytes(chunk, 'big') % self.num_keywords}")
            position += 2
        result = frozenset(chosen)
        cache[key] = result
        if len(cache) > self._cache_capacity:
            cache.popitem(last=False)
        return result

    def matches(self, key: ObjectKey, keyword: str) -> bool:
        """Does *key* carry *keyword*?"""
        return keyword in self.keywords_of(key)


class KeywordSearchEngine:
    """Directory-side keyword resolution over the directory-index."""

    def __init__(self, space: KeywordSpace, max_results: int = 20) -> None:
        if max_results < 1:
            raise CDNError("max_results must be positive")
        self.space = space
        self.max_results = max_results

    def search_index(
        self,
        index: Dict[ObjectKey, Set[Address]],
        own_store_keys: Set[ObjectKey],
        own_address: Address,
        keyword: str,
    ) -> List[SearchMatch]:
        """All (object, provider) pairs in a petal matching *keyword*.

        Providers come from the directory-index; the directory's own cache
        participates too (it is a content peer of its petal).
        """
        matches: List[SearchMatch] = []
        for key, providers in index.items():
            if providers and self.space.matches(key, keyword):
                matches.append((key, next(iter(sorted(providers)))))
                if len(matches) >= self.max_results:
                    return matches
        for key in sorted(own_store_keys):
            if self.space.matches(key, keyword) and all(
                key != k for k, __ in matches
            ):
                matches.append((key, own_address))
                if len(matches) >= self.max_results:
                    break
        return matches


class SearchProbeWorkload:
    """Periodic keyword searches from random petal members.

    Drives the availability experiments: each tick, one eligible peer
    (in a petal now, or orphaned from one -- those must count toward an
    outage, not silently drop out of the denominator) issues a search for
    a random keyword.  Results are observed through the
    ``flower.search_done`` trace event, not collected here.

    Draws come from a dedicated RNG stream so enabling probes never
    perturbs the protocol's own random sequences.
    """

    def __init__(
        self,
        sim,
        system,
        period_ms: float,
        rng,
        localities: Optional[Sequence[int]] = None,
        websites: Optional[Sequence[int]] = None,
    ) -> None:
        self.sim = sim
        self.system = system
        self.rng = rng
        self.localities = None if localities is None else frozenset(localities)
        self.websites = None if websites is None else frozenset(websites)
        self.issued = 0
        self.skipped = 0
        self.process = PeriodicProcess(
            sim, period_ms, self._tick, initial_delay=rng.uniform(0.0, period_ms)
        )

    def _candidates(self) -> list:
        peers = [
            peer
            for peer in self.system.peers.values()
            if getattr(peer, "search_probe_target", False)
            and (self.localities is None or peer.locality in self.localities)
            and (self.websites is None or peer.website in self.websites)
        ]
        peers.sort(key=lambda peer: peer.address)
        return peers

    def _tick(self) -> None:
        engine = self.system.search_engine
        if engine is None:
            return
        peers = self._candidates()
        if not peers:
            self.skipped += 1
            return
        peer = peers[self.rng.randrange(len(peers))]
        keyword = f"kw{self.rng.randrange(engine.space.num_keywords)}"
        self.issued += 1
        peer.search(keyword, _discard_results)


def _discard_results(matches: List[SearchMatch]) -> None:
    """Probe sink: outcomes are accounted via ``flower.search_done``."""


class SearchAvailabilityTracker:
    """Windowed availability statistics over ``flower.search_done`` events.

    ``unregistered`` completions (peers that never joined a petal) are
    excluded from the denominator; every other source counts as issued,
    and everything except ``none`` counts as answered.
    """

    ANSWERED = frozenset({"local", "directory", "replica", "takeover"})

    def __init__(self, sim) -> None:
        self._events: List[Tuple[float, str, float]] = []
        sim.trace.subscribe("flower.search_done", self._on_done)

    def _on_done(self, event) -> None:
        payload = event.payload
        self._events.append(
            (event.time, payload["source"], payload["staleness_ms"])
        )

    def window_stats(
        self, start_ms: float = 0.0, end_ms: float = float("inf")
    ) -> dict:
        issued = answered = replica_served = 0
        max_stale = 0.0
        by_source: Dict[str, int] = {}
        for time, source, staleness_ms in self._events:
            if not start_ms <= time < end_ms or source == "unregistered":
                continue
            issued += 1
            by_source[source] = by_source.get(source, 0) + 1
            if source in self.ANSWERED:
                answered += 1
            if source == "replica":
                replica_served += 1
                if staleness_ms > max_stale:
                    max_stale = staleness_ms
        return {
            "issued": issued,
            "answered": answered,
            "availability": answered / issued if issued else 1.0,
            "replica_served": replica_served,
            "max_replica_staleness_ms": max_stale,
            "by_source": dict(sorted(by_source.items())),
        }
