"""Keyword search within petals (the paper's future work, section 7).

The paper closes with: "In the future, we plan to explore sophisticated
search functionalities wrt. semantic and personalized search."  This module
implements the natural first step on top of Flower-CDN's existing
machinery: *keyword* search resolved by the petal's directory peer.

Model: every object carries a small deterministic set of keywords (standing
in for extracted content terms).  A directory peer already knows which
member holds which object (the directory-index); inverting it by keyword
answers "who in my petal has anything about K?" with zero extra protocol
state -- the index keeps itself fresh through the usual push/expiry
maintenance, so search inherits Flower-CDN's churn robustness for free.

Usage::

    system.search_engine = KeywordSearchEngine(KeywordSpace(num_keywords=50))
    peer.search("kw7", on_results)   # content peers ask their directory;
                                     # directory peers answer locally
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Set, Tuple

from repro.errors import CDNError
from repro.types import Address, ObjectKey

#: One search result: (object key, address of a provider).
SearchMatch = Tuple[ObjectKey, Address]

SearchCallback = Callable[[List[SearchMatch]], None]


class KeywordSpace:
    """Deterministic object -> keywords mapping.

    Stands in for real content-derived terms: every object gets between
    ``min_keywords`` and ``max_keywords`` keywords chosen by hashing, so all
    peers agree on the mapping without exchanging metadata.
    """

    def __init__(
        self,
        num_keywords: int = 50,
        min_keywords: int = 1,
        max_keywords: int = 3,
    ) -> None:
        if num_keywords < 1:
            raise CDNError("need at least one keyword")
        if not 1 <= min_keywords <= max_keywords:
            raise CDNError("need 1 <= min_keywords <= max_keywords")
        self.num_keywords = num_keywords
        self.min_keywords = min_keywords
        self.max_keywords = max_keywords

    def all_keywords(self) -> List[str]:
        """Every keyword in the space."""
        return [f"kw{i}" for i in range(self.num_keywords)]

    def keywords_of(self, key: ObjectKey) -> Set[str]:
        """The object's keywords (deterministic, stable everywhere)."""
        digest = hashlib.sha256(f"kw:{key[0]}:{key[1]}".encode()).digest()
        count = self.min_keywords + digest[0] % (
            self.max_keywords - self.min_keywords + 1
        )
        chosen = set()
        position = 1
        while len(chosen) < count:
            chunk = digest[position: position + 2]
            if len(chunk) < 2:  # pragma: no cover - 32-byte digest suffices
                break
            chosen.add(f"kw{int.from_bytes(chunk, 'big') % self.num_keywords}")
            position += 2
        return chosen

    def matches(self, key: ObjectKey, keyword: str) -> bool:
        """Does *key* carry *keyword*?"""
        return keyword in self.keywords_of(key)


class KeywordSearchEngine:
    """Directory-side keyword resolution over the directory-index."""

    def __init__(self, space: KeywordSpace, max_results: int = 20) -> None:
        if max_results < 1:
            raise CDNError("max_results must be positive")
        self.space = space
        self.max_results = max_results

    def search_index(
        self,
        index: Dict[ObjectKey, Set[Address]],
        own_store_keys: Set[ObjectKey],
        own_address: Address,
        keyword: str,
    ) -> List[SearchMatch]:
        """All (object, provider) pairs in a petal matching *keyword*.

        Providers come from the directory-index; the directory's own cache
        participates too (it is a content peer of its petal).
        """
        matches: List[SearchMatch] = []
        for key, providers in index.items():
            if providers and self.space.matches(key, keyword):
                matches.append((key, next(iter(sorted(providers)))))
                if len(matches) >= self.max_results:
                    return matches
        for key in sorted(own_store_keys):
            if self.space.matches(key, keyword) and all(
                key != k for k, __ in matches
            ):
                matches.append((key, own_address))
                if len(matches) >= self.max_results:
                    break
        return matches


