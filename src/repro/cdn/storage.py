"""Per-peer content storage with push-threshold change tracking.

"A peer only stores content it has requested" and "has enough storage
potential to avoid replacing its content through the experiment's duration"
(paper section 6.1) -- so by default the store is a grow-only set of object
keys, kept across sessions (the same user's browser cache survives a
crash).

The paper explicitly scopes out "cache issues such as cache expiration and
replacement policies" (footnote 1); as an extension this store also
supports a **bounded LRU cache** (``capacity=N``): adding beyond the
capacity evicts the least-recently-used objects, evictions count as changes
for the push threshold (the directory must unlearn them), and the ablation
benchmark measures what finite caches cost the system.

The store also implements the bookkeeping behind push messages: a content
peer pushes "updates about its stored content to its directory peer ...
whenever the percentage of its changes reaches a threshold" (section 5.1,
push threshold 0.5 in Table 1).  The percentage is changes-since-last-push
relative to the size the directory last saw.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Set

from repro.errors import CDNError
from repro.types import ObjectKey


class ContentStore:
    """A peer's cached objects plus push-threshold accounting.

    Args:
        initial: keys present from the start.
        capacity: maximum number of objects; ``None`` (the paper's
            assumption) means unbounded.  With a capacity, insertion beyond
            it evicts least-recently-used keys.
    """

    def __init__(
        self,
        initial: Iterable[ObjectKey] = (),
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise CDNError("cache capacity must be >= 1 or None")
        self.capacity = capacity
        self._keys: "OrderedDict[ObjectKey, None]" = OrderedDict(
            (key, None) for key in initial
        )
        while capacity is not None and len(self._keys) > capacity:
            self._keys.popitem(last=False)
        self._size_at_last_push = 0
        self._changes_since_push = len(self._keys)
        self.evictions = 0

    # --------------------------------------------------------------- content
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: ObjectKey) -> bool:
        return key in self._keys

    def add(self, key: ObjectKey) -> bool:
        """Store *key*; returns True if it was new.

        Eviction side effects are reported through :meth:`add_with_evictions`
        for callers that must propagate them (summary rebuild, re-querying).
        """
        return bool(self.add_with_evictions(key)[0])

    def add_with_evictions(self, key: ObjectKey) -> "tuple[bool, List[ObjectKey]]":
        """Store *key*; return (was_new, evicted_keys)."""
        if key in self._keys:
            self._keys.move_to_end(key)  # refresh recency
            return False, []
        self._keys[key] = None
        self._changes_since_push += 1
        evicted: List[ObjectKey] = []
        while self.capacity is not None and len(self._keys) > self.capacity:
            victim, __ = self._keys.popitem(last=False)
            evicted.append(victim)
            self.evictions += 1
            self._changes_since_push += 1  # the directory must unlearn it
        return True, evicted

    def touch(self, key: ObjectKey) -> None:
        """Mark *key* as recently used (a local cache hit)."""
        if key in self._keys:
            self._keys.move_to_end(key)

    def keys(self) -> Set[ObjectKey]:
        """A copy of the stored key set."""
        return set(self._keys)

    def held_indexes(self, website: int) -> Set[int]:
        """Object indexes held for one website (seeds a re-joining peer's
        query stream: it never re-requests what it already has)."""
        return {index for ws, index in self._keys if ws == website}

    # ------------------------------------------------------------------ push
    @property
    def changes_since_push(self) -> int:
        return self._changes_since_push

    def change_fraction(self) -> float:
        """Changes since last push relative to the last-pushed size.

        A peer that has never pushed anything (size 0) reports 1.0 as soon
        as it holds anything, so the first object always triggers a push.
        """
        if self._changes_since_push == 0:
            return 0.0
        return self._changes_since_push / max(1, self._size_at_last_push)

    def should_push(self, threshold: float) -> bool:
        """True when the accumulated changes warrant a push exchange."""
        return self.change_fraction() >= threshold

    def mark_pushed(self) -> None:
        """Reset change tracking after a successful push."""
        self._size_at_last_push = len(self._keys)
        self._changes_since_push = 0

    def reset_push_state(self) -> None:
        """Forget that anything was ever pushed.

        Called when the peer (re-)registers with a directory peer: the new
        directory has never seen this cache, so the whole content counts as
        unpushed changes and the next threshold check fires immediately.
        """
        self._size_at_last_push = 0
        self._changes_since_push = len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContentStore({len(self._keys)} keys, "
            f"{self._changes_since_push} unpushed)"
        )
