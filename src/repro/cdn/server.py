"""Origin web servers.

Every supported website has an origin server that can always serve its own
objects -- the P2P CDN exists precisely to keep queries *away* from it.  A
query that reaches the server is a miss for the hit-ratio metric; the
server's network distance still counts for lookup latency and transfer
distance, because the object does get delivered from there.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.net.message import Message
from repro.net.transport import Network, NetworkNode
from repro.types import WebsiteId


class OriginServer(NetworkNode):
    """The authoritative server of one website."""

    def __init__(self, network: Network, website: WebsiteId) -> None:
        super().__init__(network)
        self.website = website
        self.requests_served = 0
        #: Chunk requests from degraded swarming transfers (section is the
        #: swarming extension; zero in paper-faithful runs).
        self.chunks_served = 0
        #: Origin-served payload bytes -- whole objects plus chunks.  Only
        #: accounted when an object-size model is installed.
        self.bytes_served = 0
        self.sizes = None

    def handle_server_fetch(self, message: Message) -> Dict[str, Any]:
        """Serve an object (always succeeds for the server's own website)."""
        key = tuple(message.payload["key"])
        ok = key[0] == self.website
        if ok:
            self.requests_served += 1
            if self.sizes is not None:
                self.bytes_served += self.sizes.size_bytes(key)
        return {"ok": ok}

    def handle_server_chunk(self, message: Message) -> Dict[str, Any]:
        """Serve one chunk to a degraded swarming transfer.

        The downloader names the chunk's byte size (chunk geometry is a
        pure function of the shared size model, so this is bookkeeping,
        not trust).
        """
        key = tuple(message.payload["key"])
        ok = key[0] == self.website
        if ok:
            self.chunks_served += 1
            self.bytes_served += message.payload.get("size", 0)
        return {"ok": ok}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OriginServer(ws={self.website}, served={self.requests_served})"
