"""Chunked multi-source downloads that survive seeder death.

The paper models a content fetch as one atomic RPC (section 6.1): a
serving peer that crashes mid-download is invisible, which hides exactly
the failure mode a flash crowd of large objects makes common.  This
module makes large-object transfer a first-class, failure-survivable
subsystem:

* a querier that resolved a provider opens a :class:`SwarmTransfer`
  instead of one ``flower.fetch`` RPC when the object spans more than
  one chunk (:mod:`repro.workload.objectsize`);
* the provider answers a ``swarm.manifest`` request with the chunk
  indices it **has** plus **also** hints — other peers it placed chunk
  replicas on — and the transfer pumps chunk requests in parallel,
  rarest-first among advertised holders;
* a dead source (RPC timeout, mid-flow upload abort) or a stalled slow
  uplink triggers per-chunk retry with exponential backoff to an
  alternate holder — *resume, never restart*: completed chunks are kept
  and only missing ones are re-requested;
* a chunk with no live holder left degrades to the origin server for the
  *remaining* chunks only (terminal outcome ``miss_degraded``).

Cold mode (``swarm_resume=False`` with one source) reproduces the
single-source baseline for the A/B benchmark: any source failure emits
``swarm.restart``, discards all progress and re-fetches the whole object
from the origin.

Every transfer is terminally accounted (invariant I9): exactly one of
completed / degraded / failed closes each ``swarm.start``, with byte
accounting consistent — bytes received equals the chunk sizes of
completed chunks, no chunk counted twice within a generation.

Trace events (all gated on :meth:`Simulator.tracing`):

``swarm.start``        transfer opened (peer, key, chunks, size)
``swarm.chunk_done``   one chunk landed (chunk, source, bytes)
``swarm.chunk_retry``  per-chunk failover (chunk, source, reason)
``swarm.degraded``     fell back to origin for the remaining chunks
``swarm.restart``      cold mode discarded progress (restart-from-zero)
``swarm.done``         terminal close (outcome, bytes, origin_bytes)

Determinism: chunk and source selection are pure functions of the
transfer state (fewest holders, then lowest index; fewest in-flight,
then lowest address) — no RNG stream is consumed, so enabling swarming
cannot perturb unrelated draws.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.types import Address, ObjectKey

__all__ = ["SwarmTransfer"]

#: Cap on the exponential per-chunk retry backoff.
RETRY_CAP_MS = 8000.0


class SwarmTransfer:
    """One chunked, multi-source download on the querying peer.

    The peer keeps the query-ledger discipline (I1): this machine ends
    every run by calling ``peer._finish_query`` (hit_swarm /
    miss_degraded), ``peer._fail_query`` (origin unreachable), or — on a
    crash of the downloading peer itself — :meth:`abort`, after which the
    crash sweep records ``failed_crash`` for the open ledger entry.
    """

    def __init__(
        self,
        peer: Any,
        key: ObjectKey,
        provider: Address,
        started_at: float,
        hops: int = 0,
        extra_sources: Optional[List[Address]] = None,
    ) -> None:
        self.peer = peer
        self.sim = peer.sim
        self.key = key
        self.provider = provider
        self.started_at = started_at
        self.hops = hops
        params = peer.system.params
        self.parallel = params.swarm_parallel
        self.max_sources = params.swarm_sources
        self.resume = params.swarm_resume
        self.stall_ms = params.swarm_stall_ms
        self.retry_ms = params.swarm_retry_ms
        sizes = peer.system.sizes
        self.chunk_sizes: List[int] = sizes.chunk_sizes(key)
        self.size_bytes = sizes.size_bytes(key)
        count = len(self.chunk_sizes)
        # --- chunk state ---
        self.pending: Set[int] = set(range(count))
        self.in_flight: Dict[int, Optional[Address]] = {}  # None == origin
        self.completed: Set[int] = set()
        self.origin_chunks: Set[int] = set()
        self.attempts: Dict[int, int] = {}
        # --- source state ---
        self.holders: Dict[int, Set[Address]] = {i: set() for i in range(count)}
        self.sources: Set[Address] = set()
        self._asked: Set[Address] = {peer.address}
        self._manifests_pending = 0
        self._extra_sources = list(extra_sources or ())
        # --- accounting ---
        self.bytes_received = 0
        self.origin_bytes = 0
        self.restarts = 0
        self.degraded = False
        self.done = False
        #: Bumped on restart-from-zero; stale callbacks compare against it.
        self.generation = 0
        self._timers: Dict[int, Any] = {}
        self._flows: Dict[int, Any] = {}
        self._retry_handles: Dict[int, Any] = {}

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        peer = self.peer
        old = peer._swarms.get(self.key)
        if old is not None:
            old.abort()  # superseded by a fresh query for the same key
        peer._swarms[self.key] = self
        peer.system.swarm_started += 1
        if self.sim.tracing("swarm.start"):
            self.sim.emit(
                "swarm.start",
                peer=peer.address,
                key=self.key,
                chunks=len(self.chunk_sizes),
                size=self.size_bytes,
            )
        self._ask_manifest(self.provider)
        for address in self._extra_sources:
            if len(self._asked) - 1 >= self.max_sources:
                break
            self._ask_manifest(address)

    def abort(self) -> None:
        """Terminal close without a query outcome (downloader crash or a
        superseding query); the ledger entry is settled elsewhere."""
        if self.done:
            return
        self._close("failed")

    # ------------------------------------------------------------- manifests
    def _ask_manifest(self, address: Address) -> None:
        if address in self._asked or address == self.peer.address:
            return
        self._asked.add(address)
        self._manifests_pending += 1
        gen = self.generation

        def on_reply(payload: Dict[str, Any]) -> None:
            if self.done or gen != self.generation:
                return
            self._manifests_pending -= 1
            if payload.get("ok"):
                self._merge_manifest(address, payload)
            self._pump()

        def on_timeout() -> None:
            if self.done or gen != self.generation:
                return
            self._manifests_pending -= 1
            self._drop_source(address)
            self._pump()

        self.peer.rpc(
            address, "swarm.manifest", {"key": self.key}, on_reply, on_timeout
        )

    def _merge_manifest(self, address: Address, payload: Dict[str, Any]) -> None:
        self.sources.add(address)
        count = len(self.chunk_sizes)
        for index in payload.get("have", ()):
            if 0 <= index < count:
                self.holders[index].add(address)
        for hint in payload.get("also", ()):
            if len(self._asked) - 1 >= self.max_sources:
                break
            self._ask_manifest(hint)

    def _drop_source(self, address: Address) -> None:
        """Forget a dead or slow source everywhere."""
        self.sources.discard(address)
        for holders in self.holders.values():
            holders.discard(address)

    # ------------------------------------------------------------------ pump
    def _pump(self) -> None:
        """Fill the parallel window rarest-first; detect completion."""
        if self.done or not self.peer.alive:
            return
        while self.pending and len(self.in_flight) < self.parallel:
            fetchable = [i for i in self.pending if self.holders[i] & self.sources]
            if fetchable:
                chunk = min(
                    fetchable, key=lambda i: (len(self.holders[i] & self.sources), i)
                )
                source = self._pick_source(chunk)
                self._fetch_chunk(chunk, source)
                continue
            if self._manifests_pending > 0:
                return  # more holder info may still arrive; don't degrade yet
            self._origin_chunk(min(self.pending))
        if not self.pending and not self.in_flight and not self._retry_handles:
            self._finish()

    def _pick_source(self, chunk: int) -> Optional[Address]:
        candidates = self.holders[chunk] & self.sources
        if not candidates:
            return None
        busy: Dict[Address, int] = {}
        for src in self.in_flight.values():
            if src is not None:
                busy[src] = busy.get(src, 0) + 1
        return min(candidates, key=lambda a: (busy.get(a, 0), a))

    # ----------------------------------------------------------- chunk fetch
    def _fetch_chunk(self, chunk: int, source: Address) -> None:
        self.pending.discard(chunk)
        self.in_flight[chunk] = source
        gen = self.generation

        def stale() -> bool:
            return (
                self.done
                or gen != self.generation
                or self.in_flight.get(chunk) != source
            )

        def on_reply(payload: Dict[str, Any]) -> None:
            if stale():
                return
            if not payload.get("ok"):
                # The source no longer holds this chunk (eviction).
                self.holders[chunk].discard(source)
                self._chunk_failed(chunk, source, "gone")
                return
            bandwidth = self.peer.network.bandwidth
            if bandwidth is None:
                self._chunk_done(chunk, source)
                return
            flow = bandwidth.start(
                source,
                self.peer.address,
                self.chunk_sizes[chunk],
                on_done=lambda _f: None if stale() else self._chunk_done(chunk, source),
                on_abort=lambda _f: None
                if stale()
                else self._source_died(chunk, source, "seeder_death"),
            )
            self._flows[chunk] = flow
            self._timers[chunk] = self.sim.schedule(
                self.stall_ms, self._stalled, chunk, source, gen
            )

        def on_timeout() -> None:
            if stale():
                return
            self._source_died(chunk, source, "timeout")

        self.peer.rpc(
            source, "swarm.chunk", {"key": self.key, "chunk": chunk}, on_reply, on_timeout
        )

    def _stalled(self, chunk: int, source: Address, gen: int) -> None:
        self._timers.pop(chunk, None)
        if self.done or gen != self.generation or self.in_flight.get(chunk) != source:
            return
        # Slow-uplink degradation: abandon the laggard for good.
        self._source_died(chunk, source, "stalled")

    def _source_died(self, chunk: int, source: Address, reason: str) -> None:
        self._drop_source(source)
        self._chunk_failed(chunk, source, reason)

    def _chunk_failed(self, chunk: int, source: Address, reason: str) -> None:
        self._clear_chunk(chunk)
        self.peer.system.swarm_chunk_retries += 1
        if self.sim.tracing("swarm.chunk_retry"):
            self.sim.emit(
                "swarm.chunk_retry",
                peer=self.peer.address,
                key=self.key,
                chunk=chunk,
                source=source,
                reason=reason,
            )
        if not self.resume:
            self._restart_from_zero()
            return
        attempts = self.attempts.get(chunk, 0) + 1
        self.attempts[chunk] = attempts
        delay = min(self.retry_ms * (2.0 ** (attempts - 1)), RETRY_CAP_MS)
        gen = self.generation

        def retry() -> None:
            self._retry_handles.pop(chunk, None)
            if self.done or gen != self.generation:
                return
            self.pending.add(chunk)
            self._pump()

        self._retry_handles[chunk] = self.sim.schedule(delay, retry)

    def _clear_chunk(self, chunk: int) -> None:
        self.in_flight.pop(chunk, None)
        timer = self._timers.pop(chunk, None)
        if timer is not None:
            self.sim.cancel(timer)
        flow = self._flows.pop(chunk, None)
        if flow is not None:
            bandwidth = self.peer.network.bandwidth
            if bandwidth is not None:
                bandwidth.cancel(flow)

    def _chunk_done(self, chunk: int, source: Address) -> None:
        self._clear_chunk(chunk)
        self.completed.add(chunk)
        size = self.chunk_sizes[chunk]
        self.bytes_received += size
        self.peer.system.swarm_p2p_bytes += size
        if self.sim.tracing("swarm.chunk_done"):
            self.sim.emit(
                "swarm.chunk_done",
                peer=self.peer.address,
                key=self.key,
                chunk=chunk,
                source=source,
                bytes=size,
            )
        self._pump()

    # --------------------------------------------------------------- origin
    def _origin_chunk(self, chunk: int) -> None:
        """Fetch one remaining chunk from the origin server (degraded)."""
        if not self.degraded:
            self.degraded = True
            self.peer.system.swarm_degraded += 1
            if self.sim.tracing("swarm.degraded"):
                self.sim.emit(
                    "swarm.degraded",
                    peer=self.peer.address,
                    key=self.key,
                    remaining=len(self.pending) + 1,
                )
        self.pending.discard(chunk)
        self.in_flight[chunk] = None
        gen = self.generation
        params = self.peer.system.params
        server = self.peer.system.servers[self.key[0]]
        size = self.chunk_sizes[chunk]

        def on_reply(payload: Dict[str, Any]) -> None:
            if self.done or gen != self.generation or chunk not in self.in_flight:
                return
            self.in_flight.pop(chunk, None)
            self.completed.add(chunk)
            self.origin_chunks.add(chunk)
            self.origin_bytes += size
            self.peer.system.swarm_origin_bytes += size
            if self.sim.tracing("swarm.chunk_done"):
                self.sim.emit(
                    "swarm.chunk_done",
                    peer=self.peer.address,
                    key=self.key,
                    chunk=chunk,
                    source=server.address,
                    bytes=size,
                )
            self._pump()

        def on_give_up() -> None:
            if self.done or gen != self.generation:
                return
            self._close("failed")
            self.peer._fail_query(self.key, "failed_unreachable", self.started_at)

        self.peer.retrying_rpc(
            server.address,
            "server.chunk",
            {"key": self.key, "chunk": chunk, "size": size},
            on_reply=on_reply,
            on_give_up=on_give_up,
            retries=params.rpc_retries,
            backoff_ms=params.rpc_backoff_ms,
        )

    def _restart_from_zero(self) -> None:
        """Cold-mode source failure: discard progress, refetch everything
        from the origin (the whole-object fallback of the baseline)."""
        self.restarts += 1
        self.peer.system.swarm_restarts += 1
        self.generation += 1
        for chunk in list(self.in_flight):
            self._clear_chunk(chunk)
        for handle in self._retry_handles.values():
            self.sim.cancel(handle)
        self._retry_handles.clear()
        # Progress discarded: completed bytes no longer count as received.
        self.bytes_received = 0
        self.origin_bytes = 0
        self.completed.clear()
        self.origin_chunks.clear()
        self.pending = set(range(len(self.chunk_sizes)))
        if self.sim.tracing("swarm.restart"):
            self.sim.emit("swarm.restart", peer=self.peer.address, key=self.key)
        while self.pending:
            self._origin_chunk(min(self.pending))

    # ------------------------------------------------------------- terminal
    def _finish(self) -> None:
        if self.done:
            return
        peer = self.peer
        if self.degraded or self.restarts:
            self._close("degraded")
            peer._finish_query(
                self.key,
                "miss_degraded",
                peer.system.servers[self.key[0]].address,
                self.started_at,
                self.hops,
            )
        else:
            self._close("completed")
            peer.system.swarm_completed += 1
            peer._finish_query(
                self.key, "hit_swarm", self.provider, self.started_at, self.hops
            )

    def _close(self, outcome: str) -> None:
        self.done = True
        for chunk in list(self.in_flight):
            self._clear_chunk(chunk)
        for handle in self._retry_handles.values():
            self.sim.cancel(handle)
        self._retry_handles.clear()
        if outcome == "failed":
            self.peer.system.swarm_failed += 1
        if self.peer._swarms.get(self.key) is self:
            del self.peer._swarms[self.key]
        if self.sim.tracing("swarm.done"):
            self.sim.emit(
                "swarm.done",
                peer=self.peer.address,
                key=self.key,
                outcome=outcome,
                bytes=self.bytes_received,
                origin_bytes=self.origin_bytes,
                size=self.size_bytes,
                elapsed_ms=self.sim.now - self.started_at,
            )
