"""The CDN protocols: Flower-CDN, PetalUp-CDN and the Squirrel baseline.

This is the paper's contribution layer, built on the substrates:

- :mod:`repro.cdn.storage` -- per-peer content stores with the push-threshold
  change tracking of section 5.1;
- :mod:`repro.cdn.server` -- origin web servers (the fallback on a miss);
- :mod:`repro.cdn.base` -- the protocol-independent system interface the
  experiment runner drives (arrivals, departures, query issuing);
- :mod:`repro.cdn.flower` -- Flower-CDN: petals, D-ring, directory peers,
  content peers, and the maintenance protocols of section 5.  PetalUp-CDN
  (section 4) is Flower-CDN configured with a finite directory load limit
  and more than one directory instance per petal;
- :mod:`repro.cdn.squirrel` -- the Squirrel baseline (Iyer, Rowstron &
  Druschel, PODC 2002), directory ("redirection") variant over one global
  Chord ring.
"""

from repro.cdn.base import CdnSystem
from repro.cdn.server import OriginServer
from repro.cdn.storage import ContentStore

__all__ = ["CdnSystem", "OriginServer", "ContentStore"]
