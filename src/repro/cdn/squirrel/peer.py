"""One Squirrel participant.

Every peer is a Chord ring member (identifier = hash of its address, stable
across re-joins: it is the same machine) and doubles as the *home node* for
the object keys its identifier range covers.  The per-object directory of
recent downloaders lives in plain memory -- when the peer crashes the
directory is gone, which is precisely the churn weakness Figure 3 probes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.cdn.base import BasePeer
from repro.dht.node import ChordNode, LookupResult, deliver_route_result, route_step
from repro.net.message import Message
from repro.types import Address, ObjectKey


class SquirrelPeer(BasePeer):
    """A Squirrel peer: Chord member + home-node directory + client."""

    def __init__(self, system, identity, website, cluster_hint=None):
        super().__init__(system, identity, website, cluster_hint)
        self.node_id = system.ring.space.hash_value(f"squirrel-peer-{self.address}")
        self.chord: Optional[ChordNode] = None
        #: object key -> ordered delegate addresses (oldest first).
        self.home_directory: Dict[ObjectKey, "OrderedDict[Address, None]"] = {}
        # Delivery fast path: pre-register wrappers so ``Network._deliver``
        # can dispatch straight from the handler cache (each wrapper re-reads
        # ``self.chord`` at call time -- identical to the on_message route).
        cache = self._handler_cache
        cache["chord.route"] = self._dispatch_chord_route
        cache["chord.route_result"] = self._dispatch_chord_route_result
        for kind in (
            "chord.get_state",
            "chord.notify",
            "chord.ping",
            "chord.probe",
            "chord.successor_hint",
            "chord.predecessor_hint",
        ):
            cache[kind] = self._dispatch_chord_component

    # ------------------------------------------------------------ dispatch
    def on_message(self, message: Message) -> Optional[Dict[str, Any]]:
        """Route chord traffic to the Chord component, rest to handlers."""
        if message.kind == "chord.route":
            return route_step(self.chord, self, message)
        if message.kind == "chord.route_result":
            return deliver_route_result(self, message)
        if message.kind.startswith("chord."):
            if self.chord is None:
                if message.kind == "chord.probe":
                    return {"status": "not_ready"}
                return {}
            return self.chord.on_message(message)
        return super().on_message(message)

    # Cache-resident wrappers (see ``__init__``).
    def _dispatch_chord_route(self, message: Message) -> Optional[Dict[str, Any]]:
        return route_step(self.chord, self, message)

    def _dispatch_chord_route_result(self, message: Message) -> Optional[Dict[str, Any]]:
        return deliver_route_result(self, message)

    def _dispatch_chord_component(self, message: Message) -> Optional[Dict[str, Any]]:
        chord = self.chord
        if chord is None:
            if message.kind == "chord.probe":
                return {"status": "not_ready"}
            return {}
        handler = chord._handler_cache.get(message.kind)
        if handler is None:
            return chord.on_message(message)
        return handler(message)

    # ------------------------------------------------------------ lifecycle
    def _on_session_begin(self) -> None:
        self.home_directory = {}  # a fresh process: the directory died
        self.chord = ChordNode(self, self.system.ring, self.node_id)
        bootstrap = self.system.ring.random_bootstrap(self.rng)
        if bootstrap is None:
            self.chord.create()
            return
        self.chord.join(
            bootstrap,
            on_joined=lambda: None,
            on_failed=self._join_failed,
        )

    def _join_failed(self, reason: str, holder) -> None:
        if not self.alive or self.chord is None or self.chord.joined:
            return
        # Retry until we get in; queries work meanwhile via bootstrap starts.
        self.sim.schedule(
            self.system.params.scan_retry_delay_ms, self._retry_join
        )

    def _retry_join(self) -> None:
        if not self.alive or self.chord is None or self.chord.joined:
            return
        bootstrap = self.system.ring.random_bootstrap(self.rng)
        if bootstrap is None:
            self.chord.create()
            return
        self.chord.join(bootstrap, on_joined=lambda: None, on_failed=self._join_failed)

    def _on_crash(self) -> None:
        if self.chord is not None:
            self.chord.shutdown()
            self.chord = None
        self.home_directory = {}

    # =====================================================================
    # Query path
    # =====================================================================
    def _resolve_query(self, key: ObjectKey, started_at: float) -> None:
        """Resolve one query: Chord lookup -> home node -> delegate."""
        if key in self.store:
            self._finish_query(key, "hit_local", self.address, started_at)
            return
        key_id = self._key_id(key)

        def on_lookup(result: LookupResult) -> None:
            if not self.alive:
                return
            if not result.ok:
                self._fetch_from_server(key, "miss_failed", started_at)
                return
            home = result.found
            if home.address == self.address:
                self._resolve_at_own_home(key, started_at, result.hops)
            else:
                self._ask_home(key, home.address, started_at, result.hops)

        if self.chord is not None and self.chord.joined:
            self.chord.lookup(key_id, on_lookup)
        else:
            bootstrap = self.system.ring.random_bootstrap(self.rng)
            if bootstrap is None:
                self._fetch_from_server(key, "miss_failed", started_at)
                return
            prober = self.chord or ChordNode(self, self.system.ring, self.node_id)
            prober.lookup(key_id, on_lookup, start=bootstrap)

    def _key_id(self, key: ObjectKey) -> int:
        return self.system.ring.space.hash_value(self.system.catalog.url(key))

    def _resolve_at_own_home(self, key: ObjectKey, started_at: float, hops: int) -> None:
        provider = self._pick_delegate(key, exclude=self.address)
        self._register_delegate(key, self.address)
        if provider is None:
            self._fetch_from_server(key, "miss_server", started_at, hops)
        else:
            self._fetch_delegate(key, provider, self.address, started_at, hops)

    def _ask_home(
        self, key: ObjectKey, home: Address, started_at: float, hops: int
    ) -> None:
        def on_reply(payload: Dict[str, Any]) -> None:
            provider = payload.get("provider")
            if provider is None:
                self._fetch_from_server(key, "miss_server", started_at, hops)
            else:
                self._fetch_delegate(key, provider, home, started_at, hops)

        self.rpc(
            home,
            "squirrel.query",
            {"key": key},
            on_reply,
            on_timeout=lambda: self._fetch_from_server(
                key, "miss_failed", started_at, hops
            ),
        )

    def _fetch_delegate(
        self,
        key: ObjectKey,
        provider: Address,
        home: Address,
        started_at: float,
        hops: int,
    ) -> None:
        if provider == self.address:
            self._finish_query(key, "hit_local", self.address, started_at, hops)
            return

        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("ok"):
                self._finish_query(key, "hit_directory", provider, started_at, hops)
            else:
                self._report_dead_delegate(key, provider, home)
                self._fetch_from_server(key, "miss_failed", started_at, hops)

        def on_timeout() -> None:
            self._report_dead_delegate(key, provider, home)
            self._fetch_from_server(key, "miss_failed", started_at, hops)

        self.rpc(provider, "squirrel.fetch", {"key": key}, on_reply, on_timeout)

    def _report_dead_delegate(self, key: ObjectKey, delegate: Address, home: Address) -> None:
        if home == self.address:
            self._drop_delegate(key, delegate)
        else:
            self.send(home, "squirrel.dead", key=key, delegate=delegate)

    # =====================================================================
    # Home-node behaviour
    # =====================================================================
    def _pick_delegate(self, key: ObjectKey, exclude: Address) -> Optional[Address]:
        delegates = self.home_directory.get(key)
        if not delegates:
            return None
        candidates: List[Address] = [a for a in delegates if a != exclude]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _register_delegate(self, key: ObjectKey, requester: Address) -> None:
        delegates = self.home_directory.setdefault(key, OrderedDict())
        if requester in delegates:
            delegates.move_to_end(requester)
        else:
            delegates[requester] = None
            capacity = self.system.params.squirrel_directory_capacity
            while len(delegates) > capacity:
                delegates.popitem(last=False)  # evict the oldest

    def _drop_delegate(self, key: ObjectKey, delegate: Address) -> None:
        delegates = self.home_directory.get(key)
        if delegates is not None:
            delegates.pop(delegate, None)
            if not delegates:
                del self.home_directory[key]

    def handle_squirrel_query(self, message: Message) -> Dict[str, Any]:
        """Home-node side: redirect to a delegate, record the requester."""
        key = tuple(message.payload["key"])
        provider = self._pick_delegate(key, exclude=message.src)
        if provider is None and key in self.store:
            provider = self.address
        # Optimistically record the requester: it is about to hold a copy
        # (from the delegate or from the origin server).
        self._register_delegate(key, message.src)
        return {"provider": provider}

    def handle_squirrel_fetch(self, message: Message) -> Dict[str, Any]:
        """Serve an object from our cache to another peer."""
        key = tuple(message.payload["key"])
        return {"ok": key in self.store}

    def handle_squirrel_dead(self, message: Message) -> None:
        """A client reports one of our delegates dead: evict it."""
        self._drop_delegate(
            tuple(message.payload["key"]), message.payload["delegate"]
        )
        return None
