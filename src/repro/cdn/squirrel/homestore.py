"""Squirrel's *home-store* strategy.

The paper's related-work section describes two DHT web-caching strategies
(section 2): the first "replicates web objects at peers with ID numerically
closest to the hash of the URL of the object without any locality or
interest considerations"; the second (the default baseline here) keeps only
a directory of downloaders at that peer.  This module implements the first,
so both halves of the paper's criticism can be measured:

- peers are forced to store content they are not interested in (the
  ``replica_store`` below, filled by strangers' uploads);
- replicas are served from a random network location (the home node);
- the whole replica set is "abruptly lost" when the home node fails, and
  the successor inheriting the key range starts empty.

Query flow: route to the home node; if it holds a replica it serves the
object directly (outcome ``hit_home``); otherwise the client fetches from
the origin and uploads a copy to the home node for future requesters.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.cdn.squirrel.peer import SquirrelPeer
from repro.cdn.squirrel.system import SquirrelSystem
from repro.dht.node import LookupResult
from repro.net.message import Message
from repro.types import Address, ObjectKey


class HomeStorePeer(SquirrelPeer):
    """A Squirrel peer under the home-store (replication) strategy."""

    def __init__(self, system, identity, website, cluster_hint=None):
        super().__init__(system, identity, website, cluster_hint)
        #: Replicas this peer hosts *as a home node* -- content it never
        #: asked for.  Unlike the browser cache, replicas do not survive a
        #: crash (a fresh process has no replica store), and a re-joining
        #: identity starts empty.
        self.replica_store: Set[ObjectKey] = set()

    def _on_session_begin(self) -> None:
        self.replica_store = set()
        super()._on_session_begin()

    def _on_crash(self) -> None:
        super()._on_crash()
        self.replica_store = set()

    # ------------------------------------------------------------ query path
    def _resolve_query(self, key: ObjectKey, started_at: float) -> None:
        """Resolve one query: Chord lookup -> home replica or origin."""
        if key in self.store:
            self._finish_query(key, "hit_local", self.address, started_at)
            return
        key_id = self._key_id(key)

        def on_lookup(result: LookupResult) -> None:
            if not self.alive:
                return
            if not result.ok:
                self._fetch_from_server(key, "miss_failed", started_at)
                return
            home = result.found
            if home.address == self.address:
                # We are the home node ourselves.
                if key in self.replica_store:
                    self._finish_query(key, "hit_local", self.address, started_at,
                                       result.hops)
                else:
                    self.replica_store.add(key)  # will hold it once fetched
                    self._fetch_from_server(key, "miss_server", started_at,
                                            result.hops)
            else:
                self._fetch_home_replica(key, home.address, started_at, result.hops)

        if self.chord is not None and self.chord.joined:
            self.chord.lookup(key_id, on_lookup)
        else:
            bootstrap = self.system.ring.random_bootstrap(self.rng)
            if bootstrap is None:
                self._fetch_from_server(key, "miss_failed", started_at)
                return
            from repro.dht.node import ChordNode

            prober = self.chord or ChordNode(self, self.system.ring, self.node_id)
            prober.lookup(key_id, on_lookup, start=bootstrap)

    def _fetch_home_replica(
        self, key: ObjectKey, home: Address, started_at: float, hops: int
    ) -> None:
        def on_reply(payload: Dict[str, Any]) -> None:
            if payload.get("ok"):
                self._finish_query(key, "hit_home", home, started_at, hops)
            else:
                # Miss at the home: fetch from the origin, then replicate
                # the object at the home node for future requesters (the
                # upload is one one-way message carrying the object).
                self._fetch_from_server(key, "miss_server", started_at, hops)
                self.send(home, "squirrel.store", key=key)

        self.rpc(
            home,
            "squirrel.homefetch",
            {"key": key},
            on_reply,
            on_timeout=lambda: self._fetch_from_server(
                key, "miss_failed", started_at, hops
            ),
        )

    # ------------------------------------------------------- home behaviour
    def handle_squirrel_homefetch(self, message: Message) -> Dict[str, Any]:
        """Serve a home-node replica (or our own cached copy)."""
        key = tuple(message.payload["key"])
        return {"ok": key in self.replica_store or key in self.store}

    def handle_squirrel_store(self, message: Message) -> None:
        """Accept a replica we may have zero interest in (the criticism)."""
        self.replica_store.add(tuple(message.payload["key"]))
        return None


class HomeStoreSquirrelSystem(SquirrelSystem):
    """Squirrel under the home-store (replication) strategy."""

    name = "squirrel-home"

    def _make_peer(self, identity: int):
        return HomeStorePeer(self, identity, self.website_of(identity))

    def total_forced_replicas(self) -> int:
        """Objects peers currently store without having requested them."""
        return sum(
            len(peer.replica_store)
            for peer in self.peers.values()
            if peer.alive and isinstance(peer, HomeStorePeer)
        )
