"""Squirrel system orchestration.

One global Chord ring holding *every* online peer.  The initial population
mirrors the paper's setup for comparability: the same number of peers that
form Flower-CDN's initial D-ring (k x |W|) start online in a warm-started
(already stabilized) ring.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdn.base import BasePeer, CdnSystem, ProtocolParams
from repro.cdn.squirrel.peer import SquirrelPeer
from repro.dht.node import ChordNode
from repro.dht.ring import ChordRing
from repro.errors import CDNError
from repro.metrics.collector import MetricsCollector
from repro.net.landmarks import LandmarkBinner
from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog


class SquirrelSystem(CdnSystem):
    """The Squirrel baseline (directory variant over one global ring)."""

    name = "squirrel"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        binner: LandmarkBinner,
        catalog: Catalog,
        params: ProtocolParams,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        super().__init__(sim, network, binner, catalog, params, metrics)
        self.ring = ChordRing(params.dring)
        self.seed_identities: List[int] = []

    def _make_peer(self, identity: int) -> BasePeer:
        return SquirrelPeer(self, identity, self.website_of(identity))

    @property
    def num_seed_identities(self) -> int:
        """Same initial population size as Flower-CDN's D-ring seed."""
        return self.catalog.num_websites * self.binner.num_localities

    def setup_initial_population(self) -> None:
        """Create the initial peers and warm-start the global ring."""
        if self.seed_identities:
            raise CDNError("initial population already created")
        chord_nodes: List[ChordNode] = []
        peers: List[SquirrelPeer] = []
        for identity in range(self.num_seed_identities):
            peer = self.peer_for(identity)
            self.seed_identities.append(identity)
            peers.append(peer)
        # Build the ring directly instead of through peer join protocols.
        for peer in peers:
            peer.chord = ChordNode(peer, self.ring, peer.node_id)
            chord_nodes.append(peer.chord)
        self.ring.warm_start(chord_nodes)
        for peer in peers:
            # Sessions are already ring-wired: skip the join in the hook.
            peer.sessions += 1
            if self.catalog.is_active(peer.website):
                peer._start_query_process()

    # ------------------------------------------------------------- reports
    def ring_size(self) -> int:
        """Live members of the global Chord ring."""
        return len(self.ring.active_members())
