"""Squirrel: the decentralized P2P web cache baseline (PODC 2002).

The paper compares Flower-CDN against Squirrel's *directory* scheme, which
"shares some similarities with Flower-CDN wrt. the directory structure"
(section 6.1): every peer joins one global Chord ring; the *home node* of an
object is the live node whose identifier succeeds the hash of the object's
URL; the home node keeps a small directory of recent downloaders (delegates)
and redirects requests to a random one.

The two weaknesses the paper exploits are faithfully present:

- every query "has to navigate through the whole DHT" -- a full Chord
  lookup at 10-500 ms per hop, hence second-scale lookup latencies;
- "the directory information is abruptly lost at the failure of its storing
  peer" -- directories live in the home node's memory and die with it, and
  the successor that inherits the key range starts empty.
"""

from repro.cdn.squirrel.homestore import HomeStorePeer, HomeStoreSquirrelSystem
from repro.cdn.squirrel.peer import SquirrelPeer
from repro.cdn.squirrel.system import SquirrelSystem

__all__ = [
    "SquirrelPeer",
    "SquirrelSystem",
    "HomeStorePeer",
    "HomeStoreSquirrelSystem",
]
