"""Command-line interface.

Five subcommands cover the common workflows without writing Python::

    python -m repro run flower --population 240 --hours 12
    python -m repro compare --population 240 --hours 12 --plot
    python -m repro sweep --populations 120,180,240 --protocols flower,squirrel
    python -m repro overhead squirrel --population 120 --hours 6
    python -m repro chaos flower --plans 3 --chaos-seed 1 --intensity 1.5

``--paper`` switches any command from the reduced default scale to the
paper's full Table 1 parameters (expect minutes of wall clock).

Option names are normalized across subcommands: ``--replication``,
``--workers``, ``--overload``, and ``--rebalance`` mean the same thing
everywhere (``--rebalance`` implies the ``--overload`` recipe and turns
on redirect hints + content rebalancing).  Deprecated alias spellings
(``--replication-k``, ``--num-workers``) still parse but warn.

``chaos`` runs seeded randomized fault schedules with the online
invariant auditor (:mod:`repro.chaos`); it exits non-zero when any
invariant is violated and drops a reproducer bundle per violation into
``--results-dir``, replayable later with ``--replay BUNDLE.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import List, Optional

from repro.analysis.ascii import line_chart
from repro.analysis.compare import ComparisonReport
from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import PROTOCOLS, run_experiment
from repro.metrics.overhead import OverheadReport
from repro.metrics.report import render_table


class _DeprecatedAlias(argparse.Action):
    """Old option spelling: still works, but names its replacement.

    Normalized option names are the single source of truth; aliases warn
    on stderr (visible in CLI use) and via :class:`DeprecationWarning`
    (catchable in tests) instead of silently diverging.
    """

    def __init__(self, *args, canonical: str = "", **kwargs):
        self.canonical = canonical
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        message = f"{option_string} is deprecated; use {self.canonical}"
        print(f"warning: {message}", file=sys.stderr)
        warnings.warn(message, DeprecationWarning, stacklevel=2)
        if self.nargs == 0:
            values = True
        setattr(namespace, self.dest, values)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--population", type=int, default=240, help="mean population P")
    parser.add_argument("--hours", type=float, default=12.0, help="simulated hours")
    parser.add_argument("--seed", type=int, default=1, help="master RNG seed")
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full Table 1 parameters (slow)",
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=0,
        metavar="K",
        help="directory replication degree (0 = off; warm failover, section 5.3)",
    )
    parser.add_argument(
        "--replication-k",
        type=int,
        dest="replication",
        action=_DeprecatedAlias,
        canonical="--replication",
        metavar="K",
        help=argparse.SUPPRESS,
    )
    parser.add_argument("--json", metavar="PATH", help="also write the result as JSON")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = the single-simulator path; "
        "> 1 runs the sharded engine, flower only, and N must divide the "
        "shard map -- one shard per locality)",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        dest="workers",
        action=_DeprecatedAlias,
        canonical="--workers",
        metavar="N",
        help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--overload",
        action="store_true",
        help=(
            "sustained open-loop overload: saturating traffic, bounded "
            "directory admission queues, and replica-aware shedding"
        ),
    )
    parser.add_argument(
        "--rebalance",
        action="store_true",
        help=(
            "reactive overload control on top of --overload (implied): "
            "queue-aware redirect hints + shedding-aware content "
            "rebalancing"
        ),
    )


def _apply_overload_recipe(
    config: ExperimentConfig, rebalance: bool
) -> ExperimentConfig:
    """The shared ``--overload`` operating point: open-loop traffic that
    can saturate directories, bounded admission queues, and replica-aware
    shedding.  ``--rebalance`` layers the reactive half on top: redirect
    hints + hot-key spilling."""
    config = config.replace(
        openloop_rate_qps=max(1.0, config.population / 20.0),
        directory_queue_limit=16,
        directory_service_ms=40.0,
        overload_shedding=True,
    )
    if rebalance:
        config = config.replace(redirect_hints=True, rebalance=True)
    return config


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    replication = getattr(args, "replication", 0)
    if args.paper:
        config = ExperimentConfig.paper(
            population=args.population,
            duration_hours=args.hours,
            directory_replication_k=replication,
        )
    else:
        config = ExperimentConfig.scaled(
            population=args.population,
            duration_hours=args.hours,
            directory_replication_k=replication,
        )
    rebalance = getattr(args, "rebalance", False)
    if getattr(args, "overload", False) or rebalance:
        config = _apply_overload_recipe(config, rebalance)
    return config


def _maybe_write_json(args: argparse.Namespace, payload: dict) -> None:
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")


def _print_result(result) -> None:
    print(result.summary_line())
    print()
    print(
        render_table(
            ["outcome", "queries", "share"],
            [
                [outcome, count, f"{count / max(result.queries, 1):.1%}"]
                for outcome, count in sorted(result.outcome_counts.items())
            ],
        )
    )


def cmd_run(args: argparse.Namespace) -> int:
    """Handler of ``repro run``: one experiment, printed summary."""
    config = _config_from(args)
    result = run_experiment(
        args.protocol, config, seed=args.seed, workers=getattr(args, "workers", 1)
    )
    _print_result(result)
    if args.plot and result.hit_ratio_curve:
        print()
        print(
            line_chart(
                {args.protocol: result.hit_ratio_curve},
                title="cumulative hit ratio",
                x_label="hours",
            )
        )
    _maybe_write_json(args, result.to_dict())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Handler of ``repro compare``: Flower vs Squirrel + shape checks."""
    if getattr(args, "workers", 1) != 1:
        raise ConfigError(
            "compare runs squirrel, which the sharded engine does not "
            "support; rerun with --workers 1"
        )
    config = _config_from(args)
    flower = run_experiment("flower", config, seed=args.seed)
    squirrel = run_experiment("squirrel", config, seed=args.seed)
    report = ComparisonReport(flower, squirrel)
    print(report.render())
    if args.plot:
        print()
        print(
            line_chart(
                {
                    "flower": flower.hit_ratio_curve,
                    "squirrel": squirrel.hit_ratio_curve,
                },
                title="Figure 3 -- cumulative hit ratio",
                x_label="hours",
            )
        )
    _maybe_write_json(
        args, {"flower": flower.to_dict(), "squirrel": squirrel.to_dict()}
    )
    return 0 if report.all_passed else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Handler of ``repro sweep``: Table-2-style population sweep."""
    populations = [int(p) for p in args.populations.split(",")]
    protocols = args.protocols.split(",")
    rows = []
    payload = {}
    for population in populations:
        for protocol in protocols:
            namespace = argparse.Namespace(
                population=population,
                hours=args.hours,
                paper=args.paper,
                seed=args.seed,
                replication=args.replication,
                overload=getattr(args, "overload", False),
                rebalance=getattr(args, "rebalance", False),
            )
            config = _config_from(namespace)
            result = run_experiment(
                protocol, config, seed=args.seed, workers=getattr(args, "workers", 1)
            )
            rows.append(
                [
                    population,
                    protocol,
                    f"{result.hit_ratio:.2f}",
                    f"{result.mean_lookup_latency_ms:.0f} ms",
                    f"{result.mean_transfer_ms:.0f} ms",
                ]
            )
            payload[f"{protocol}_{population}"] = result.to_dict()
    print(
        render_table(
            ["P", "approach", "hit ratio", "lookup", "transfer"],
            rows,
            title="scalability sweep (Table 2 style)",
        )
    )
    _maybe_write_json(args, payload)
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    """Handler of ``repro overhead``: message-overhead breakdown."""
    config = _config_from(args)
    result = run_experiment(
        args.protocol, config, seed=args.seed, workers=getattr(args, "workers", 1)
    )
    report = OverheadReport(result.extra["message_counts"], result.queries)
    print(result.summary_line())
    print()
    print(report.render())
    _maybe_write_json(args, result.to_dict())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Handler of ``repro chaos``: audited chaos plans or bundle replay."""
    from repro.chaos import generate_plan, replay_bundle, run_chaos

    if args.replay:
        report = replay_bundle(
            args.replay,
            results_dir=args.results_dir,
            halt_on_violation=args.halt,
        )
        print(report.summary_line())
        for violation in report.violations:
            print(f"  {violation.time:12.0f} ms  {violation.kind}  {violation.subject}")
        _maybe_write_json(args, report.to_dict())
        return 0 if report.ok else 1

    config = _config_from(args)
    if getattr(args, "search", False):
        # Search-under-churn lanes: keyword engine + synthetic probes so
        # the auditor's I7 (search availability / staleness) has traffic
        # to judge.  Off by default: search changes the trace stream.
        config = config.replace(search_keywords=24, search_probe_period_s=45.0)
    # The overload recipe itself is applied by _config_from (shared with
    # run/sweep/overhead); chaos additionally unlocks the
    # sustained_overload phase in the plan menu so the auditor's I8
    # (shed accounting) -- and, with --rebalance, the I10 hint-hop
    # discipline -- has pressure to judge.
    overload = getattr(args, "overload", False) or getattr(args, "rebalance", False)
    seeder_death = getattr(args, "seeder_death", False)
    if seeder_death:
        # Swarming lanes: chunked multi-source transfers over a
        # bandwidth-limited network, plus the seeder_death phase in the
        # plan menu so the auditor's I9 (transfer ledger) sees kills of
        # the peers actually carrying the swarm.  Off by default: the
        # chunk traffic changes every trace.
        config = config.replace(
            swarming=True,
            swarm_replicate=2,
            object_mean_kb=256.0,
            bandwidth_kbps=4000.0,
            bandwidth_slow_fraction=0.15,
        )
    workers = getattr(args, "workers", 1)
    if workers != 1:
        # Validate the shape up front so a bad worker count fails before
        # any plan runs, with the actionable divisibility message.
        from repro.experiments.sharded import validate_sharded

        validate_sharded(args.protocol, config, workers)
        print(
            f"note: --workers {workers} runs each plan's fault schedule on "
            f"the sharded engine; the online invariant auditor needs the "
            f"single-simulator world and is OFF in this mode."
        )
    exit_code = 0
    payload = {}
    for offset in range(args.plans):
        chaos_seed = args.chaos_seed + offset
        plan = generate_plan(
            chaos_seed,
            horizon_ms=config.duration_ms,
            num_localities=config.num_localities,
            num_websites=config.num_websites,
            intensity=args.intensity,
            population=config.population,
            overload=overload,
            seeder_death=seeder_death,
        )
        if workers != 1:
            from repro.experiments.sharded import run_sharded_experiment

            chaos_config = config.replace(
                fault_schedule=tuple(config.fault_schedule) + tuple(plan.faults)
            )
            result = run_sharded_experiment(
                args.protocol, chaos_config, seed=args.seed, workers=workers
            )
            print(f"{plan.name}: {result.summary_line()}")
            drops = result.extra.get("drop_counts", {})
            dropped = sum(drops.values())
            print(f"  faults injected: {len(plan.faults)}; messages dropped: {dropped}")
            payload[plan.name] = result.to_dict()
            continue
        report = run_chaos(
            args.protocol,
            config,
            plan,
            seed=args.seed,
            results_dir=args.results_dir,
            halt_on_violation=args.halt,
        )
        print(report.summary_line())
        for violation in report.violations:
            print(f"  {violation.time:12.0f} ms  {violation.kind}  {violation.subject}")
        for path in report.bundle_paths:
            print(f"  reproducer: {path}")
        payload[plan.name] = report.to_dict()
        if not report.ok:
            exit_code = 1
    _maybe_write_json(args, payload)
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flower-CDN / PetalUp-CDN reproduction (El Dick, VLDB 2009)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("protocol", choices=sorted(PROTOCOLS))
    run_parser.add_argument("--plot", action="store_true", help="ASCII hit-ratio chart")
    _add_common_arguments(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="Flower vs Squirrel with the paper's shape checks"
    )
    compare_parser.add_argument("--plot", action="store_true")
    _add_common_arguments(compare_parser)
    compare_parser.set_defaults(handler=cmd_compare)

    sweep_parser = subparsers.add_parser("sweep", help="population sweep (Table 2)")
    sweep_parser.add_argument("--populations", default="120,180,240")
    sweep_parser.add_argument("--protocols", default="flower,squirrel")
    _add_common_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=cmd_sweep)

    overhead_parser = subparsers.add_parser(
        "overhead", help="message-overhead breakdown of one run"
    )
    overhead_parser.add_argument("protocol", choices=sorted(PROTOCOLS))
    _add_common_arguments(overhead_parser)
    overhead_parser.set_defaults(handler=cmd_overhead)

    chaos_parser = subparsers.add_parser(
        "chaos", help="audited chaos plans / reproducer-bundle replay"
    )
    chaos_parser.add_argument("protocol", choices=sorted(PROTOCOLS))
    chaos_parser.add_argument(
        "--plans", type=int, default=3, help="number of consecutive chaos seeds to run"
    )
    chaos_parser.add_argument(
        "--chaos-seed", type=int, default=1, help="first chaos-plan seed"
    )
    chaos_parser.add_argument(
        "--intensity", type=float, default=1.0, help="fault intensity in [0.1, 10]"
    )
    chaos_parser.add_argument(
        "--results-dir",
        default="results/chaos",
        help="where violation reproducer bundles are written",
    )
    chaos_parser.add_argument(
        "--replay", metavar="BUNDLE", help="replay one dumped reproducer bundle"
    )
    chaos_parser.add_argument(
        "--halt", action="store_true", help="stop at the first violation"
    )
    chaos_parser.add_argument(
        "--seeder-death",
        action="store_true",
        help=(
            "add swarming transfer chaos: chunked multi-source transfers "
            "over a bandwidth-limited network and the seeder_death phase "
            "(kill the top uploaders mid-window) in the generated plans"
        ),
    )
    chaos_parser.add_argument(
        "--search",
        action="store_true",
        help="enable keyword search + probe workload (audits invariant I7)",
    )
    _add_common_arguments(chaos_parser)
    chaos_parser.set_defaults(handler=cmd_chaos)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ConfigError as error:
        # Shape mistakes (e.g. a --workers value that does not divide the
        # shard map) are user errors, not crashes: one clear line, exit 2.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
