"""Zipf-distributed popularity.

"We apply Zipf distribution for object requests submitted to each website",
citing Breslau et al. (INFOCOM 1999), who measured web-request popularity as
Zipf-like with exponent alpha around 0.6-0.8.  We default to 0.8.

Two sampling backends:

``method="cdf"`` (default)
    Inverse-CDF over precomputed cumulative probabilities -- O(log n) per
    sample via ``bisect``, one uniform draw per sample.  This is the
    historical implementation; its draw-to-rank mapping is part of the
    deterministic-replay contract (same seed => same query sequence), so it
    stays the default.

``method="alias"``
    Walker/Vose alias table -- O(1) per sample, still one uniform draw
    (split into bucket index and acceptance fraction).  Samples the *same
    distribution* but maps uniform draws to different ranks than the CDF
    method, so switching backends changes the replayed sequence (not the
    statistics).  Use it for throughput-bound synthetic workloads with
    large universes.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List

from repro.errors import WorkloadError

_METHODS = ("cdf", "alias")


class ZipfSampler:
    """Sample ranks 0..n-1 with P(rank i) proportional to 1/(i+1)^alpha.

    Rank 0 is the most popular item.

    Args:
        n: universe size.
        exponent: the Zipf alpha (>= 0; 0 degenerates to uniform).
        method: ``"cdf"`` (default, O(log n)/sample, replay-stable) or
            ``"alias"`` (O(1)/sample, different draw-to-rank mapping).
    """

    def __init__(self, n: int, exponent: float = 0.8, method: str = "cdf") -> None:
        if n < 1:
            raise WorkloadError(f"Zipf universe must be non-empty (got n={n})")
        if exponent < 0:
            raise WorkloadError(f"Zipf exponent must be >= 0 (got {exponent})")
        if method not in _METHODS:
            raise WorkloadError(f"unknown Zipf method {method!r}; choose from {_METHODS}")
        self.n = n
        self.exponent = exponent
        self.method = method
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cumulative.append(acc / total)
        cumulative[-1] = 1.0  # guard against floating-point shortfall
        self._cumulative = cumulative
        if method == "alias":
            self._alias_prob, self._alias = self._build_alias(
                [w / total for w in weights]
            )

    @staticmethod
    def _build_alias(probs: List[float]) -> "tuple[List[float], List[int]]":
        """Vose's stable O(n) alias-table construction."""
        n = len(probs)
        scaled = [p * n for p in probs]
        prob = [0.0] * n
        alias = list(range(n))
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            (small if scaled[hi] < 1.0 else large).append(hi)
        for leftover in large:
            prob[leftover] = 1.0
        for leftover in small:  # numerical stragglers
            prob[leftover] = 1.0
        return prob, alias

    def probability(self, rank: int) -> float:
        """Exact probability mass of *rank*."""
        if not 0 <= rank < self.n:
            raise WorkloadError(f"rank {rank} outside [0, {self.n})")
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - previous

    def sample(self, rng: random.Random) -> int:
        """One Zipf-distributed rank."""
        if self.method == "alias":
            scaled = rng.random() * self.n
            bucket = int(scaled)
            if bucket >= self.n:  # guard against rounding at 1.0
                bucket = self.n - 1
            if scaled - bucket < self._alias_prob[bucket]:
                return bucket
            return self._alias[bucket]
        return bisect_left(self._cumulative, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        if self.method == "alias":
            sample = self.sample
            return [sample(rng) for _ in range(count)]
        cumulative = self._cumulative
        uniform = rng.random
        return [bisect_left(cumulative, uniform()) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZipfSampler(n={self.n}, alpha={self.exponent}, "
            f"method={self.method!r})"
        )
