"""Zipf-distributed popularity.

"We apply Zipf distribution for object requests submitted to each website",
citing Breslau et al. (INFOCOM 1999), who measured web-request popularity as
Zipf-like with exponent alpha around 0.6-0.8.  We default to 0.8.

Sampling uses the inverse-CDF method over the precomputed cumulative
probabilities (O(log n) per sample via bisect), which is exact and fast
enough at n = 500.
"""

from __future__ import annotations

import bisect
import random
from typing import List

from repro.errors import WorkloadError


class ZipfSampler:
    """Sample ranks 0..n-1 with P(rank i) proportional to 1/(i+1)^alpha.

    Rank 0 is the most popular item.

    Args:
        n: universe size.
        exponent: the Zipf alpha (>= 0; 0 degenerates to uniform).
    """

    def __init__(self, n: int, exponent: float = 0.8) -> None:
        if n < 1:
            raise WorkloadError(f"Zipf universe must be non-empty (got n={n})")
        if exponent < 0:
            raise WorkloadError(f"Zipf exponent must be >= 0 (got {exponent})")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cumulative.append(acc / total)
        cumulative[-1] = 1.0  # guard against floating-point shortfall
        self._cumulative = cumulative

    def probability(self, rank: int) -> float:
        """Exact probability mass of *rank*."""
        if not 0 <= rank < self.n:
            raise WorkloadError(f"rank {rank} outside [0, {self.n})")
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - previous

    def sample(self, rng: random.Random) -> int:
        """One Zipf-distributed rank."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfSampler(n={self.n}, alpha={self.exponent})"
