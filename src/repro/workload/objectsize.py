"""Seeded heavy-tailed object sizes and chunk geometry.

The paper's workload treats every object as a unit payload; transfer
distance (fig 5) is therefore a hop proxy.  To make byte-level transfer
metrics meaningful, each object key is assigned a size drawn from a
**bounded Pareto** distribution — the classic heavy-tailed web-object
model: most objects are small, a fat tail is large enough to need
chunked, multi-source delivery.

Determinism: the size of a key is a *pure function* of ``(seed, key)``
via :func:`derive_seed` — no shared RNG stream is consumed, so enabling
sizes cannot perturb any other draw, and the same key gets the same size
on every peer, shard, and run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.sim.rng import derive_seed
from repro.types import ObjectKey

__all__ = ["ObjectSizeModel"]


class ObjectSizeModel:
    """Per-key deterministic sizes plus fixed-chunk geometry.

    Sizes follow a bounded Pareto with shape ``alpha`` whose scale is
    chosen so the *unbounded* mean is ``mean_kb`` (``x_m = mean_kb *
    (alpha - 1) / alpha``), truncated at ``max_kb`` by inverse-CDF on a
    bounded support.  Objects are split into fixed ``chunk_kb`` chunks;
    the final chunk carries the remainder.

    Args:
        mean_kb: target mean object size, kilobytes.
        alpha: Pareto shape (>1; smaller = heavier tail).
        max_kb: hard cap on object size, kilobytes.
        chunk_kb: chunk size, kilobytes.
        seed: master seed for the per-key draw.
    """

    def __init__(
        self,
        mean_kb: float = 64.0,
        alpha: float = 1.5,
        max_kb: float = 4096.0,
        chunk_kb: int = 64,
        seed: int = 0,
    ) -> None:
        if alpha <= 1.0:
            raise ConfigError(f"alpha must be > 1 (got {alpha})")
        if mean_kb <= 0:
            raise ConfigError(f"mean_kb must be positive (got {mean_kb})")
        if chunk_kb <= 0:
            raise ConfigError(f"chunk_kb must be positive (got {chunk_kb})")
        self.mean_kb = mean_kb
        self.alpha = alpha
        self.chunk_bytes = int(chunk_kb) * 1024
        self.seed = seed
        # Scale so the unbounded Pareto mean is mean_kb.
        self._x_m = mean_kb * (alpha - 1.0) / alpha
        self._max_kb = max(max_kb, self._x_m * 2.0)
        self._cache: Dict[ObjectKey, int] = {}

    def size_bytes(self, key: ObjectKey) -> int:
        """The deterministic size of ``key`` in bytes (memoized)."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        u = random.Random(derive_seed(self.seed, f"objsize:{key}")).random()
        a, lo, hi = self.alpha, self._x_m, self._max_kb
        # Inverse CDF of the Pareto truncated to [lo, hi].
        trunc = 1.0 - (lo / hi) ** a
        kb = lo / (1.0 - u * trunc) ** (1.0 / a)
        size = max(1024, int(kb * 1024.0))
        self._cache[key] = size
        return size

    def chunk_count(self, key: ObjectKey) -> int:
        size = self.size_bytes(key)
        return (size + self.chunk_bytes - 1) // self.chunk_bytes

    def chunk_sizes(self, key: ObjectKey) -> List[int]:
        """Byte size of each chunk; the last carries the remainder."""
        size = self.size_bytes(key)
        full, rem = divmod(size, self.chunk_bytes)
        sizes = [self.chunk_bytes] * full
        if rem:
            sizes.append(rem)
        return sizes

    def chunk_size(self, key: ObjectKey, index: int) -> int:
        count = self.chunk_count(key)
        if not 0 <= index < count:
            raise ConfigError(f"chunk index {index} out of range for {key}")
        if index < count - 1:
            return self.chunk_bytes
        rem = self.size_bytes(key) % self.chunk_bytes
        return rem if rem else self.chunk_bytes

    def describe(self) -> Tuple[float, float, int]:
        return (self.mean_kb, self.alpha, self.chunk_bytes)
