"""The content universe: websites and their objects.

Each supported website serves a fixed set of requestable, cacheable objects
(500 in the paper).  Objects are identified by ``(website_id, object_index)``
pairs throughout the system; URLs exist only where a protocol genuinely
hashes URLs (Squirrel's home-node placement).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import WorkloadError
from repro.types import ObjectKey, WebsiteId


class Catalog:
    """The universe of websites and objects.

    Args:
        num_websites: |W|, the number of supported websites.
        objects_per_website: requestable objects per website.
        num_active_websites: how many websites actually receive queries;
            peers of the remaining websites only participate in churn
            (paper: "we restrict the query generation to 6 active websites").
            Defaults to the paper's 6, clamped to the website count.
    """

    def __init__(
        self,
        num_websites: int = 100,
        objects_per_website: int = 500,
        num_active_websites: "int | None" = None,
    ) -> None:
        if num_active_websites is None:
            num_active_websites = min(6, num_websites)
        if num_websites < 1 or objects_per_website < 1:
            raise WorkloadError(
                f"catalog needs at least one website and one object "
                f"(got {num_websites}, {objects_per_website})"
            )
        if not 1 <= num_active_websites <= num_websites:
            raise WorkloadError(
                f"num_active_websites must be in [1, {num_websites}] "
                f"(got {num_active_websites})"
            )
        self.num_websites = num_websites
        self.objects_per_website = objects_per_website
        self.num_active_websites = num_active_websites

    # -------------------------------------------------------------- websites
    def websites(self) -> range:
        return range(self.num_websites)

    def active_websites(self) -> range:
        """The websites that generate queries (the first n by convention)."""
        return range(self.num_active_websites)

    def is_active(self, website: WebsiteId) -> bool:
        return 0 <= website < self.num_active_websites

    def validate_website(self, website: WebsiteId) -> None:
        if not 0 <= website < self.num_websites:
            raise WorkloadError(f"unknown website {website}")

    # --------------------------------------------------------------- objects
    def object_key(self, website: WebsiteId, index: int) -> ObjectKey:
        self.validate_website(website)
        if not 0 <= index < self.objects_per_website:
            raise WorkloadError(
                f"object index {index} outside [0, {self.objects_per_website})"
            )
        return (website, index)

    def objects_of(self, website: WebsiteId) -> Iterator[ObjectKey]:
        self.validate_website(website)
        return ((website, index) for index in range(self.objects_per_website))

    def url(self, key: ObjectKey) -> str:
        """Canonical URL of an object (what Squirrel hashes)."""
        return f"http://ws{key[0]}.example.org/object/{key[1]}"

    @property
    def total_objects(self) -> int:
        return self.num_websites * self.objects_per_website

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Catalog({self.num_websites} websites x "
            f"{self.objects_per_website} objects, "
            f"{self.num_active_websites} active)"
        )
