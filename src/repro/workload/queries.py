"""Per-peer query streams.

The paper's query model (section 6.1):

- a peer interested in an *active* website submits one query every 6 minutes
  from arrival until failure;
- queries target objects of its website of interest, Zipf-distributed;
- "a peer only poses queries for objects unavailable in its local storage
  (i.e., it never issues the same query more than once)".

:class:`QueryStream` realises the "never repeat" rule by rejection-sampling
the Zipf distribution against the set of objects the peer already requested;
once the peer has seen a large share of the catalog (rejection becomes
wasteful) it falls back to choosing uniformly among the not-yet-requested
objects, and when everything has been requested the stream is exhausted.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.errors import WorkloadError
from repro.types import ObjectIndex, ObjectKey, WebsiteId
from repro.workload.zipf import ZipfSampler

#: Give up rejection sampling after this many straight duplicates.
_MAX_REJECTIONS = 32


class QueryStream:
    """The endless-until-exhausted object demand of one peer.

    Args:
        website: the website this peer is interested in.
        sampler: Zipf sampler over that website's objects (shared, stateless).
        rng: the peer's random stream.
        already_held: object indexes the peer starts out holding (a re-joining
            identity keeps its cache, so it resumes where it left off).
    """

    def __init__(
        self,
        website: WebsiteId,
        sampler: ZipfSampler,
        rng: random.Random,
        already_held: Optional[Set[ObjectIndex]] = None,
    ) -> None:
        self.website = website
        self.sampler = sampler
        self.rng = rng
        self.requested: Set[ObjectIndex] = set(already_held or ())
        self.issued = 0

    def mark_held(self, indexes: Set[ObjectIndex]) -> None:
        """Exclude *indexes* from future draws (the peer holds them now).

        Used when a re-joining identity resumes its stream: objects fetched
        outside the stream (or in earlier sessions) must never be re-queried.
        """
        self.requested |= indexes

    def forget(self, indexes: Set[ObjectIndex]) -> None:
        """Allow *indexes* to be drawn again (their copies were evicted
        by cache replacement -- the bounded-cache extension)."""
        self.requested -= indexes

    @property
    def exhausted(self) -> bool:
        """True when the peer has requested every object of its website."""
        return len(self.requested) >= self.sampler.n

    def next_object(self) -> Optional[ObjectKey]:
        """The next object to query, or None when exhausted."""
        if self.exhausted:
            return None
        index = self._draw_unrequested()
        self.requested.add(index)
        self.issued += 1
        return (self.website, index)

    def _draw_unrequested(self) -> ObjectIndex:
        for __ in range(_MAX_REJECTIONS):
            index = self.sampler.sample(self.rng)
            if index not in self.requested:
                return index
        # Dense coverage: pick uniformly among the remainder.
        remaining = [i for i in range(self.sampler.n) if i not in self.requested]
        if not remaining:  # pragma: no cover - guarded by `exhausted`
            raise WorkloadError("query stream exhausted")
        return self.rng.choice(remaining)
