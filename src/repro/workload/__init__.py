"""Synthetic workload and churn models (paper section 6.1).

The paper uses "synthetically generated data because available web traces
reflect object accesses while we are interested in website accesses":

- :mod:`repro.workload.catalog` -- the universe of websites and their
  objects (|W| = 100 websites x 500 requestable, cacheable objects);
- :mod:`repro.workload.zipf` -- Zipf-distributed object popularity within
  each website (Breslau et al., INFOCOM 1999);
- :mod:`repro.workload.queries` -- per-peer query streams: one query every
  6 minutes, never repeating an object the peer already holds;
- :mod:`repro.workload.churn` -- the Stutzbach-Rejaie-style churn process:
  Poisson arrivals at rate P/m, exponential session lengths with mean
  m = 60 min, a population converging to P, identities (1.3 x P of them)
  re-joining repeatedly with fresh uptimes;
- :mod:`repro.workload.openloop` -- the open-loop overload workload:
  Poisson arrivals with diurnal cycles and regionally-correlated flash
  crowds, issued on top of (not instead of) the closed-loop streams so
  directories can actually saturate.
"""

from repro.workload.catalog import Catalog
from repro.workload.churn import ChurnModel
from repro.workload.flashcrowd import FlashCrowdChurnModel, FlashCrowdProfile
from repro.workload.openloop import ArrivalProfile, OpenLoopWorkload, RegionalSurge
from repro.workload.queries import QueryStream
from repro.workload.zipf import ZipfSampler

__all__ = [
    "Catalog",
    "ZipfSampler",
    "QueryStream",
    "ChurnModel",
    "FlashCrowdProfile",
    "FlashCrowdChurnModel",
    "ArrivalProfile",
    "OpenLoopWorkload",
    "RegionalSurge",
]
