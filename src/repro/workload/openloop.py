"""Open-loop query arrivals: the workload that can actually saturate.

The paper's workload (Table 1) is *closed-loop*: every peer issues one
query per ``query_interval`` and waits for it to resolve, so total load
is capped at ``P / query_interval`` no matter how slow the directories
get -- queueing delay throttles the offered load, and overload is
unobservable by construction.  Production traffic is open-loop: requests
arrive whether or not earlier ones finished, and a saturated directory
builds a backlog instead of slowing its clients down.

This module adds that arrival process on top of the existing per-peer
machinery:

- a non-homogeneous Poisson process (via thinning, same technique as
  :class:`~repro.workload.flashcrowd.FlashCrowdChurnModel`) with an
  optional sinusoidal **diurnal cycle** and any number of
  **regionally-correlated flash crowds** (:class:`RegionalSurge`) that
  concentrate the extra arrivals on one locality and optionally one hot
  website -- the MMPP-flavoured load mix production sees;
- each accepted arrival is attributed to an online peer and issued
  through the standard :meth:`~repro.cdn.base.BasePeer.resolve_query`
  path, so the query-lifecycle ledger, the metrics taxonomy and the
  chaos auditor all see open-loop queries exactly like closed-loop ones.

Determinism: the process draws exclusively from its own ``"openloop"``
RNG stream and is only constructed when ``openloop_rate_qps > 0`` -- a
rate of zero schedules no events, draws no randomness, and leaves the
golden event streams bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.metrics.loadbalance import top_gini_contributors

#: Redraw budget per arrival before the arrival is dropped: open-loop
#: traffic may repeat objects freely -- a repeat of a cached key is
#: simply an instant local hit -- but re-querying a key the target peer
#: already has *in flight* would violate the ledger's no-reopen
#: invariant, so those keys are redrawn.
_MAX_KEY_REDRAWS = 8


@dataclass(frozen=True)
class RegionalSurge:
    """One regionally-correlated flash crowd riding the open-loop rate.

    Same intensity shape as
    :class:`~repro.workload.flashcrowd.FlashCrowdProfile` (linear ramp to
    peak, exponential decay, floored at 1.0), but scoped: the *excess*
    arrivals land in one locality and -- with ``hot_probability`` -- on
    peers interested in one hot website.

    Attributes:
        start_ms / ramp_ms / peak_multiplier / decay_ms: surge shape.
        locality: locality the crowd forms in (-1 = everywhere).
        hot_website: website the crowd wants (-1 = no website bias).
        hot_probability: chance one surge arrival targets the hot website.
    """

    start_ms: float
    ramp_ms: float
    peak_multiplier: float
    decay_ms: float
    locality: int = -1
    hot_website: int = -1
    hot_probability: float = 0.9

    def __post_init__(self) -> None:
        if self.peak_multiplier < 1.0:
            raise WorkloadError("peak multiplier must be >= 1")
        if self.ramp_ms <= 0 or self.decay_ms <= 0:
            raise WorkloadError("ramp and decay must be positive")
        if not 0.0 <= self.hot_probability <= 1.0:
            raise WorkloadError("hot probability must be in [0, 1]")

    def intensity(self, time_ms: float) -> float:
        """Rate multiplier contributed by this surge (>= 1.0 everywhere)."""
        if time_ms < self.start_ms:
            return 1.0
        peak_time = self.start_ms + self.ramp_ms
        if time_ms <= peak_time:
            fraction = (time_ms - self.start_ms) / self.ramp_ms
            return 1.0 + fraction * (self.peak_multiplier - 1.0)
        decayed = self.peak_multiplier * math.exp(
            -(time_ms - peak_time) / self.decay_ms
        )
        return max(1.0, decayed)

    def excess(self, time_ms: float) -> float:
        return self.intensity(time_ms) - 1.0

    def as_tuple(self) -> Tuple:
        """The plain-primitive config form (see ``openloop_surges``)."""
        return (
            self.start_ms,
            self.ramp_ms,
            self.peak_multiplier,
            self.decay_ms,
            self.locality,
            self.hot_website,
            self.hot_probability,
        )

    @classmethod
    def from_tuple(cls, values) -> "RegionalSurge":
        start, ramp, peak, decay, locality, hot_website, hot_p = values
        return cls(
            start_ms=float(start),
            ramp_ms=float(ramp),
            peak_multiplier=float(peak),
            decay_ms=float(decay),
            locality=int(locality),
            hot_website=int(hot_website),
            hot_probability=float(hot_p),
        )


@dataclass(frozen=True)
class ArrivalProfile:
    """The composite open-loop rate: base x diurnal + surge excess.

    The instantaneous multiplier is
    ``(1 + A sin(2 pi t / T)) + sum_s (intensity_s(t) - 1)``: the diurnal
    term modulates the base rate, surges *add* their excess on top (a
    flash crowd during the nightly trough is still a flash crowd).
    """

    rate_qps: float
    diurnal_amplitude: float = 0.0
    diurnal_period_ms: float = 86_400_000.0
    surges: Tuple[RegionalSurge, ...] = ()

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise WorkloadError("open-loop rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise WorkloadError("diurnal amplitude must be in [0, 1)")
        if self.diurnal_period_ms <= 0:
            raise WorkloadError("diurnal period must be positive")

    @classmethod
    def from_config(cls, config) -> Optional["ArrivalProfile"]:
        """Build from an ``ExperimentConfig`` (None when the rate is 0)."""
        if config.openloop_rate_qps <= 0:
            return None
        return cls(
            rate_qps=config.openloop_rate_qps,
            diurnal_amplitude=config.openloop_diurnal_amplitude,
            diurnal_period_ms=config.openloop_diurnal_period_hours * 3_600_000.0,
            surges=tuple(
                RegionalSurge.from_tuple(surge) for surge in config.openloop_surges
            ),
        )

    def diurnal(self, time_ms: float) -> float:
        if self.diurnal_amplitude == 0.0:
            return 1.0
        phase = 2.0 * math.pi * time_ms / self.diurnal_period_ms
        return 1.0 + self.diurnal_amplitude * math.sin(phase)

    def multiplier(self, time_ms: float, surges=None) -> float:
        surges = self.surges if surges is None else surges
        return self.diurnal(time_ms) + sum(s.excess(time_ms) for s in surges)

    def rate_per_ms(self, time_ms: float) -> float:
        return self.rate_qps / 1000.0 * self.multiplier(time_ms)


class OpenLoopWorkload:
    """Drives open-loop arrivals into a CDN system.

    Thinning: candidates are generated at the peak composite rate and
    accepted with probability ``multiplier(now) / peak``.  Each accepted
    arrival picks an eligible online peer (surge-excess arrivals are
    pinned to the surge's locality and, with ``hot_probability``, to
    peers interested in its hot website), draws an object from the
    website's Zipf popularity law -- repeats allowed, this is the open
    loop -- and issues it through the peer's normal query path.

    Surges may be added mid-run (the chaos sustained-overload phase does
    this): the peak bound is recomputed and applies from the next
    scheduled candidate on.
    """

    def __init__(self, sim, system, profile: ArrivalProfile) -> None:
        self.sim = sim
        self.system = system
        self.profile = profile
        self.rng = sim.rng("openloop")
        self.surges: List[RegionalSurge] = list(profile.surges)
        self.stats = {
            "candidates": 0,
            "arrivals": 0,
            "surge_arrivals": 0,
            "issued": 0,
            "skipped_no_peer": 0,
            "skipped_open_key": 0,
        }
        #: Issued queries per object key -- the ground-truth offered load
        #: the per-directory hot-key fetch counters (content rebalancing)
        #: approximate from their own vantage point.  Pure counting, no
        #: extra randomness, so golden streams are unaffected.
        self.offered: Dict[Tuple[int, int], int] = {}
        self._started = False
        self._recompute_peak()

    def _recompute_peak(self) -> None:
        peak = 1.0 + self.profile.diurnal_amplitude
        peak += sum(s.peak_multiplier - 1.0 for s in self.surges)
        self._peak = peak

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._started:
            raise WorkloadError("open-loop workload already started")
        self._started = True
        self._schedule_next_candidate()

    def add_surge(self, surge: RegionalSurge) -> None:
        """Install one more flash crowd (chaos overload windows)."""
        self.surges.append(surge)
        self._recompute_peak()

    def hot_keys(self, limit: int) -> List[Tuple[int, int]]:
        """The *limit* most-offered keys (ties broken by key).

        What a rebalancing directory *should* be spilling if its windowed
        fetch counters tracked the offered load perfectly."""
        return top_gini_contributors(self.offered, limit)

    # -------------------------------------------------------------- arrivals
    def _schedule_next_candidate(self) -> None:
        peak_rate_per_ms = self.profile.rate_qps / 1000.0 * self._peak
        gap = self.rng.expovariate(peak_rate_per_ms)
        self.sim.schedule(gap, self._candidate)

    def _candidate(self) -> None:
        self._schedule_next_candidate()
        self.stats["candidates"] += 1
        now = self.sim.now
        multiplier = self.profile.multiplier(now, self.surges)
        acceptance = min(1.0, multiplier / self._peak)
        if self.rng.random() > acceptance:
            return  # thinned: candidate above the current rate
        self.stats["arrivals"] += 1
        self._arrive(now, multiplier)

    def _attribute_surge(self, now: float) -> Optional[RegionalSurge]:
        """Which surge (if any) this arrival belongs to.

        The composite rate is ``diurnal + sum excess``; an arrival is a
        *surge* arrival with probability ``excess / composite`` per
        surge, which is exactly the share of the rate that surge
        contributes right now.
        """
        excesses = [(surge, surge.excess(now)) for surge in self.surges]
        total_excess = sum(excess for _, excess in excesses)
        if total_excess <= 0.0:
            return None
        baseline = self.profile.diurnal(now)
        draw = self.rng.uniform(0.0, baseline + total_excess)
        if draw < baseline:
            return None
        draw -= baseline
        for surge, excess in excesses:
            if draw < excess:
                return surge
            draw -= excess
        return excesses[-1][0] if excesses else None

    def _eligible_peers(self, surge: Optional[RegionalSurge]) -> List:
        catalog = self.system.catalog
        peers = [
            peer
            for peer in self.system.peers.values()
            if peer.alive and catalog.is_active(peer.website)
        ]
        if surge is None:
            return peers
        if surge.locality >= 0:
            scoped = [peer for peer in peers if peer.locality == surge.locality]
            peers = scoped or peers
        if surge.hot_website >= 0 and self.rng.random() < surge.hot_probability:
            hot = [peer for peer in peers if peer.website == surge.hot_website]
            peers = hot or peers
        return peers

    def _arrive(self, now: float, multiplier: float) -> None:
        surge = self._attribute_surge(now)
        if surge is not None:
            self.stats["surge_arrivals"] += 1
        peers = self._eligible_peers(surge)
        if not peers:
            self.stats["skipped_no_peer"] += 1
            return
        peer = peers[self.rng.randrange(len(peers))]
        key = self._draw_key(peer)
        if key is None:
            self.stats["skipped_open_key"] += 1
            return
        self.stats["issued"] += 1
        self.offered[key] = self.offered.get(key, 0) + 1
        peer.queries_issued += 1
        self.sim.emit("cdn.query", peer=peer.address, key=key)
        peer.resolve_query(key, started_at=now)

    def _draw_key(self, peer):
        """A Zipf-popular object of the peer's website.

        Open-loop arrivals repeat objects freely -- a repeat of a cached
        key resolves as an instant local hit, exactly like production
        traffic replaying a popular URL.  The single exclusion is a key
        this peer already has *in flight*: reissuing it would reopen a
        live ledger entry (the auditor's no-reopen invariant).  When
        every redraw lands on an in-flight key the arrival is dropped
        and counted.
        """
        for _ in range(_MAX_KEY_REDRAWS):
            key = (peer.website, self.system.zipf.sample(self.rng))
            if key in peer._open_queries:
                continue
            return key
        return None
