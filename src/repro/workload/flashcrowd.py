"""Flash-crowd arrival processes.

The P2P-CDN literature the paper builds on (Backslash, PROOFS -- section 2)
is motivated by *flash crowds*: sudden surges of interest in one website.
This module models them as a non-homogeneous Poisson arrival process via
thinning: the base churn rate P/m is multiplied by a time-varying intensity
profile, and arrivals during the surge are biased toward the hot website.

:class:`FlashCrowdProfile` describes the surge shape (ramp up, peak,
exponential decay); :class:`FlashCrowdChurnModel` plugs it into the
standard churn machinery.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.workload.churn import ArrivalCallback, ChurnModel, DepartureCallback


@dataclass(frozen=True)
class FlashCrowdProfile:
    """Shape of one surge.

    Intensity multiplier over time::

        1.0                              before `start_ms`
        1.0 -> `peak_multiplier` linear  during [start, start + ramp]
        peak * exp(-(t - peak_t)/decay)  afterwards, floored at 1.0

    Attributes:
        start_ms: when the surge begins.
        ramp_ms: how long the ramp to peak takes.
        peak_multiplier: arrival-rate multiple at the peak.
        decay_ms: exponential decay constant after the peak.
        hot_website: the website the crowd is interested in.
        hot_interest_probability: chance a surge arrival targets it.
    """

    start_ms: float
    ramp_ms: float
    peak_multiplier: float
    decay_ms: float
    hot_website: int = 0
    hot_interest_probability: float = 0.9

    def __post_init__(self) -> None:
        if self.peak_multiplier < 1.0:
            raise WorkloadError("peak multiplier must be >= 1")
        if self.ramp_ms <= 0 or self.decay_ms <= 0:
            raise WorkloadError("ramp and decay must be positive")
        if not 0.0 <= self.hot_interest_probability <= 1.0:
            raise WorkloadError("hot interest probability must be in [0, 1]")

    def intensity(self, time_ms: float) -> float:
        """Arrival-rate multiplier at *time_ms* (>= 1.0 everywhere)."""
        if time_ms < self.start_ms:
            return 1.0
        peak_time = self.start_ms + self.ramp_ms
        if time_ms <= peak_time:
            fraction = (time_ms - self.start_ms) / self.ramp_ms
            return 1.0 + fraction * (self.peak_multiplier - 1.0)
        decayed = self.peak_multiplier * math.exp(
            -(time_ms - peak_time) / self.decay_ms
        )
        return max(1.0, decayed)

    def in_surge(self, time_ms: float) -> bool:
        """Roughly: is the crowd still around (intensity visibly > 1)?"""
        return self.intensity(time_ms) > 1.05


class FlashCrowdChurnModel(ChurnModel):
    """Churn with a non-homogeneous (surging) arrival process.

    Implementation: thinning.  Candidate arrivals are generated at the
    *peak* rate; each is accepted with probability
    ``intensity(now) / peak_multiplier``, which yields a Poisson process of
    the desired time-varying rate.  Accepted surge arrivals are reported
    through ``on_surge_interest`` so the CDN layer can bias the identity's
    website of interest.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        num_identities: int,
        mean_uptime_ms: float,
        target_population: int,
        on_arrival: ArrivalCallback,
        on_departure: DepartureCallback,
        profile: FlashCrowdProfile,
        on_surge_interest: Optional[Callable[[int], None]] = None,
    ) -> None:
        super().__init__(
            sim,
            rng,
            num_identities,
            mean_uptime_ms,
            target_population,
            on_arrival,
            on_departure,
        )
        self.profile = profile
        self.on_surge_interest = on_surge_interest
        self.surge_arrivals = 0

    def _schedule_next_arrival(self) -> None:
        # Candidates at the peak rate; thinning happens in _arrive.
        peak_interarrival = self.mean_interarrival_ms / self.profile.peak_multiplier
        gap = self.rng.expovariate(1.0 / peak_interarrival)
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        self._schedule_next_arrival()
        acceptance = self.profile.intensity(self.sim.now) / self.profile.peak_multiplier
        if self.rng.random() > acceptance:
            return  # thinned: no arrival at the base/current rate
        surge = self.profile.in_surge(self.sim.now)
        if surge:
            self.surge_arrivals += 1
        biased = (
            surge
            and self.on_surge_interest is not None
            and self.rng.random() < self.profile.hot_interest_probability
        )
        # The interest bias must land before the arrival callback so the
        # CDN layer sees the identity already pinned to the hot website.
        self._admit_arrival(pre_arrival=self.on_surge_interest if biased else None)
