"""The churn process: arrivals, exponential sessions, re-joining identities.

The paper simulates churn "based on a study [Stutzbach & Rejaie] where P2P
population converges to a desired size P": the arrival rate equals the mean
departure rate P/m, where m is the mean peer uptime (60 minutes), uptimes
are exponentially distributed, peers *always crash* (never leave politely),
and "a peer might re-join multiple times during an experiment, each time
with a different uptime".  The identity pool holds ``1.3 x P`` peers (the
paper's "total network size").

:class:`ChurnModel` owns the arrival/departure event machinery and nothing
else; what a peer *does* while online belongs to the CDN layer, which plugs
in through the two callbacks.  In expectation the online population is
``arrival_rate x mean_uptime = P`` -- a property the tests verify.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set

from repro.errors import WorkloadError
from repro.sim.engine import Simulator

#: Fired when an identity comes online.
ArrivalCallback = Callable[[int], None]

#: Fired when an online identity crashes.
DepartureCallback = Callable[[int], None]


class ChurnModel:
    """Drives which peer identities are online when.

    Args:
        sim: the simulator.
        rng: random stream (exponential draws + identity choice).
        num_identities: size of the identity pool (1.3 x P in the paper).
        mean_uptime_ms: m, the mean session length.
        target_population: P; sets the arrival rate to P/m.
        on_arrival / on_departure: CDN-layer hooks.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        num_identities: int,
        mean_uptime_ms: float,
        target_population: int,
        on_arrival: ArrivalCallback,
        on_departure: DepartureCallback,
    ) -> None:
        if num_identities < 1:
            raise WorkloadError("identity pool must be non-empty")
        if mean_uptime_ms <= 0:
            raise WorkloadError("mean uptime must be positive")
        if target_population < 1:
            raise WorkloadError("target population must be positive")
        if target_population > num_identities:
            raise WorkloadError(
                f"target population {target_population} exceeds identity "
                f"pool {num_identities}"
            )
        self.sim = sim
        self.rng = rng
        self.num_identities = num_identities
        self.mean_uptime_ms = mean_uptime_ms
        self.target_population = target_population
        self.on_arrival = on_arrival
        self.on_departure = on_departure
        self._online: Set[int] = set()
        # Offline pool as swap-pop array + index map: O(1) admission of a
        # random identity AND O(1) removal of a *specific* identity (seeding),
        # so full-scale populations (REPRO_SCALE=full) stay O(1) per event.
        self._offline: List[int] = list(range(num_identities))
        self._offline_index: Dict[int, int] = {
            identity: index for index, identity in enumerate(self._offline)
        }
        self.arrivals = 0
        self.departures = 0
        self._started = False

    # ------------------------------------------------------------ inspection
    @property
    def online_count(self) -> int:
        return len(self._online)

    def is_online(self, identity: int) -> bool:
        return identity in self._online

    @property
    def mean_interarrival_ms(self) -> float:
        """1 / arrival rate; arrival rate is P/m (paper section 6.1)."""
        return self.mean_uptime_ms / self.target_population

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin the arrival process (idempotent)."""
        if self._started:
            return
        self._started = True
        self._schedule_next_arrival()

    def seed_online(self, identity: int, schedule_departure: bool = True) -> None:
        """Mark *identity* online without an arrival event.

        Used for the initial population (the 600 directory peers that form
        the starting D-ring, which "have limited uptimes" like everyone).
        The on_arrival callback is NOT fired -- the caller is constructing
        the peer itself.
        """
        self._take_offline_identity(identity)
        self._online.add(identity)
        if schedule_departure:
            self._schedule_departure(identity)

    def draw_uptime_ms(self) -> float:
        """One exponential session length."""
        return self.rng.expovariate(1.0 / self.mean_uptime_ms)

    # --------------------------------------------------------------- internals
    def _take_offline_identity(self, identity: int) -> None:
        if identity in self._online:
            raise WorkloadError(f"identity {identity} is already online")
        index = self._offline_index.get(identity)
        if index is None:
            raise WorkloadError(f"unknown identity {identity}")
        self._pop_offline_at(index)

    def _pop_offline_at(self, index: int) -> int:
        """Swap-pop the identity at *index* from the offline pool: O(1)."""
        identity = self._offline[index]
        tail = self._offline[-1]
        self._offline[index] = tail
        self._offline_index[tail] = index
        self._offline.pop()
        del self._offline_index[identity]
        return identity

    def _schedule_next_arrival(self) -> None:
        gap = self.rng.expovariate(1.0 / self.mean_interarrival_ms)
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        self._schedule_next_arrival()
        self._admit_arrival()

    def _admit_arrival(
        self, pre_arrival: Optional[ArrivalCallback] = None
    ) -> Optional[int]:
        """Bring one offline identity online; None if the pool is empty.

        Args:
            pre_arrival: optional hook invoked with the identity *before*
                the main arrival callback (subclasses use it to pin
                attributes, e.g. a flash crowd biasing website interest).
        """
        if not self._offline:
            # Pool exhausted (everyone already online): the arrival is lost,
            # exactly as if the would-be joiner were already a member.
            self.sim.emit("churn.arrival_skipped")
            return None
        index = self.rng.randrange(len(self._offline))
        identity = self._pop_offline_at(index)
        self._online.add(identity)
        self.arrivals += 1
        self.sim.emit("churn.arrival", identity=identity)
        self._schedule_departure(identity)
        if pre_arrival is not None:
            pre_arrival(identity)
        self.on_arrival(identity)
        return identity

    def _schedule_departure(self, identity: int) -> None:
        self.sim.schedule(self.draw_uptime_ms(), self._depart, identity)

    def _depart(self, identity: int) -> None:
        if identity not in self._online:
            return  # already taken down by an earlier session's timer
        self._online.remove(identity)
        self._offline_index[identity] = len(self._offline)
        self._offline.append(identity)
        self.departures += 1
        self.sim.emit("churn.departure", identity=identity)
        self.on_departure(identity)
