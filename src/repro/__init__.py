"""repro: a reproduction of Flower-CDN / PetalUp-CDN (El Dick, VLDB 2009).

A locality- and interest-aware peer-to-peer content distribution network,
implemented from scratch together with every substrate the paper's
evaluation depends on: a deterministic discrete-event engine (the PeerSim
stand-in), a synthetic latency topology with landmark localities, a full
Chord DHT, a Cyclon-style gossip layer, the Squirrel baseline, a Zipf
workload and an exponential-uptime churn model.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    config = ExperimentConfig(population=300, duration_hours=6.0)
    result = run_experiment("flower", config, seed=7)
    print(result.hit_ratio, result.mean_lookup_latency_ms)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.errors import (
    CDNError,
    ConfigError,
    DHTError,
    ReproError,
    SimulationError,
    TopologyError,
    TransportError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SimulationError",
    "TopologyError",
    "TransportError",
    "DHTError",
    "CDNError",
    "ConfigError",
    "WorkloadError",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "__version__",
]

# The experiment-level API is re-exported lazily (PEP 562) so that importing
# a low-level subpackage (repro.sim, repro.net, ...) does not pull in the
# whole experiment stack.
_LAZY_EXPORTS = {
    "ExperimentConfig": ("repro.experiments.config", "ExperimentConfig"),
    "ExperimentResult": ("repro.experiments.results", "ExperimentResult"),
    "run_experiment": ("repro.experiments.runner", "run_experiment"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
