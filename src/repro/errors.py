"""Exception hierarchy for the :mod:`repro` library.

Every exception raised by library code derives from :class:`ReproError`, so
callers can catch the whole family with one clause while tests can assert on
precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library exceptions."""


class SimulationError(ReproError):
    """Misuse of the discrete-event engine (scheduling into the past, ...)."""


class TopologyError(ReproError):
    """Invalid network-topology construction or queries on unknown nodes."""


class TransportError(ReproError):
    """Message-layer misuse (sending from a dead node, unknown address, ...)."""


class DHTError(ReproError):
    """Chord-layer protocol errors (joining twice, lookup from a dead node)."""


class CDNError(ReproError):
    """Errors in the CDN protocol layers (Flower, PetalUp, Squirrel)."""


class ConfigError(ReproError):
    """Invalid experiment configuration."""


class WorkloadError(ReproError):
    """Invalid workload or catalog parameters."""
