"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper tables; they quantify the knobs the paper discusses
qualitatively:

- gossip/keepalive period (section 5.1 freshness-vs-overhead trade-off);
- locality awareness (what the clustered topology + landmark binning buy);
- churn severity (the robustness claim of section 5);
- directory collaboration (section 3.2's "may collaborate");
- PetalUp directory load limit (section 4).
"""

from benchmarks.conftest import emit_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.report import render_table

ABLATION_POPULATION = 180
ABLATION_HOURS = 8.0


def ablation_config(**overrides):
    # Ablations always run at reduced scale (many runs each); REPRO_SCALE
    # only affects the figure/table benches.
    return ExperimentConfig.scaled(
        ABLATION_POPULATION, duration_hours=ABLATION_HOURS, **overrides
    )


def test_ablation_gossip_period(benchmark):
    """Faster gossip keeps indexes fresher under churn but costs messages."""

    def run():
        rows = []
        for period_min in (15.0, 60.0, 120.0):
            result = run_experiment(
                "flower", ablation_config(gossip_period_min=period_min), seed=2
            )
            rows.append(
                [
                    f"{period_min:.0f} min",
                    f"{result.hit_ratio:.3f}",
                    f"{result.outcome_counts.get('miss_failed', 0)}",
                    f"{result.messages_sent:,}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_gossip_period",
        render_table(
            ["gossip/keepalive period", "hit ratio", "failed queries", "messages"],
            rows,
            title="ablation -- gossip period (freshness vs overhead)",
        ),
    )
    messages = [int(row[3].replace(",", "")) for row in rows]
    assert messages[0] > messages[-1]  # faster gossip costs more messages


def test_ablation_locality(benchmark):
    """Remove the latency structure: locality awareness has nothing to
    exploit and Flower's transfer-distance advantage should collapse."""

    def run():
        clustered = run_experiment("flower", ablation_config(), seed=2)
        uniform = run_experiment(
            "flower", ablation_config(topology="uniform"), seed=2
        )
        return clustered, uniform

    clustered, uniform = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_locality",
        render_table(
            ["topology", "hit ratio", "lookup", "transfer"],
            [
                [
                    "clustered (locality real)",
                    f"{clustered.hit_ratio:.3f}",
                    f"{clustered.mean_lookup_latency_ms:.0f} ms",
                    f"{clustered.mean_transfer_ms:.0f} ms",
                ],
                [
                    "uniform (no structure)",
                    f"{uniform.hit_ratio:.3f}",
                    f"{uniform.mean_lookup_latency_ms:.0f} ms",
                    f"{uniform.mean_transfer_ms:.0f} ms",
                ],
            ],
            title="ablation -- what locality awareness is worth",
        ),
    )
    assert clustered.mean_transfer_ms < uniform.mean_transfer_ms


def test_ablation_churn_severity(benchmark):
    """Section 5's claim: the maintenance protocols keep Flower-CDN useful
    even under much harsher churn than the headline m = 60 min."""

    def run():
        rows = []
        for uptime in (120.0, 60.0, 30.0, 15.0):
            result = run_experiment(
                "flower", ablation_config(mean_uptime_min=uptime), seed=2
            )
            rows.append(
                [
                    f"{uptime:.0f} min",
                    f"{result.hit_ratio:.3f}",
                    f"{result.outcome_counts.get('miss_failed', 0) / result.queries:.1%}",
                    result.arrivals,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_churn",
        render_table(
            ["mean uptime", "hit ratio", "failed-query share", "arrivals"],
            rows,
            title="ablation -- churn severity (Flower-CDN)",
        ),
    )
    hit_ratios = [float(row[1]) for row in rows]
    # Degradation under 8x harsher churn stays graceful (no collapse).
    assert hit_ratios[-1] > 0.25 * hit_ratios[0]


def test_ablation_directory_collaboration(benchmark):
    """Section 3.2's optional feature: same-website directories answering
    each other's misses trade lookup latency for hit ratio."""

    def run():
        off = run_experiment("flower", ablation_config(), seed=2)
        on = run_experiment(
            "flower", ablation_config(directory_collaboration=True), seed=2
        )
        return off, on

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_collaboration",
        render_table(
            ["collaboration", "hit ratio", "hit_transfer", "lookup", "transfer"],
            [
                [
                    "off (default)",
                    f"{off.hit_ratio:.3f}",
                    off.outcome_counts.get("hit_transfer", 0),
                    f"{off.mean_lookup_latency_ms:.0f} ms",
                    f"{off.mean_transfer_ms:.0f} ms",
                ],
                [
                    "on",
                    f"{on.hit_ratio:.3f}",
                    on.outcome_counts.get("hit_transfer", 0),
                    f"{on.mean_lookup_latency_ms:.0f} ms",
                    f"{on.mean_transfer_ms:.0f} ms",
                ],
            ],
            title="ablation -- directory collaboration (section 3.2)",
        ),
    )
    assert on.hit_ratio > off.hit_ratio
    assert on.outcome_counts.get("hit_transfer", 0) > 0


def test_ablation_petalup_load_limit(benchmark):
    """Section 4: tighter load limits bound directory load at the price of
    more instances; query semantics (hit ratio) stay comparable."""

    def run():
        rows = []
        baseline = run_experiment("flower", ablation_config(), seed=2)
        rows.append(["flower (unbounded)", f"{baseline.hit_ratio:.3f}", "-"])
        for limit in (20, 10, 5):
            result = run_experiment(
                "petalup",
                ablation_config(directory_load_limit=limit, max_instances=8),
                seed=2,
            )
            rows.append(
                [f"petalup limit={limit}", f"{result.hit_ratio:.3f}", limit]
            )
        return rows, baseline

    rows, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_petalup_limit",
        render_table(
            ["system", "hit ratio", "load limit"],
            rows,
            title="ablation -- PetalUp directory load limit",
        ),
    )
    hit_ratios = [float(row[1]) for row in rows]
    # Splitting must not destroy the hit ratio.
    assert min(hit_ratios[1:]) > 0.6 * hit_ratios[0]


def test_ablation_cache_capacity(benchmark):
    """Beyond the paper: it assumes unbounded peer caches (footnote 1).
    Bounding them with LRU replacement shows how much of the hit ratio the
    assumption is worth -- and that the protocols stay correct when
    directories must continuously unlearn evicted copies."""

    def run():
        rows = []
        for capacity in (None, 50, 20, 10):
            result = run_experiment(
                "flower",
                ablation_config(peer_cache_capacity=capacity),
                seed=2,
            )
            rows.append(
                [
                    "unbounded (paper)" if capacity is None else f"{capacity} objects",
                    f"{result.hit_ratio:.3f}",
                    f"{result.mean_transfer_ms:.0f} ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_cache_capacity",
        render_table(
            ["peer cache", "hit ratio", "transfer"],
            rows,
            title="ablation -- bounded caches with LRU replacement",
        ),
    )
    hit_ratios = [float(row[1]) for row in rows]
    # smaller caches cannot help the hit ratio...
    assert hit_ratios[0] >= hit_ratios[-1] - 0.02
    # ...but even tiny caches keep the system functional
    assert hit_ratios[-1] > 0.1


def test_ablation_message_loss(benchmark):
    """Beyond the paper: robustness to a *lossy* network (the paper's churn
    is crash-only; real deployments also lose packets).  Flower-CDN's
    maintenance is timeout-driven, so loss raises failure-detection noise
    but must not collapse the system."""

    def run():
        rows = []
        for loss in (0.0, 0.02, 0.05, 0.10):
            result = run_experiment(
                "flower", ablation_config(message_loss_rate=loss), seed=2
            )
            rows.append(
                [
                    f"{loss:.0%}",
                    f"{result.hit_ratio:.3f}",
                    f"{result.outcome_counts.get('miss_failed', 0) / result.queries:.1%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_message_loss",
        render_table(
            ["message loss", "hit ratio", "failed-query share"],
            rows,
            title="ablation -- lossy network (Flower-CDN)",
        ),
    )
    hit_ratios = [float(row[1]) for row in rows]
    assert hit_ratios[-1] > 0.4 * hit_ratios[0]  # graceful degradation
