"""Baseline comparison: Squirrel's two strategies vs Flower-CDN.

The paper's related work (section 2) describes two DHT web-caching
strategies -- replicate-at-home and directory-of-downloaders -- and argues
both are vulnerable to churn and locality-blind.  This bench measures all
three systems side by side, including the home-store strategy's hidden
cost: objects peers are forced to store without having requested them.
"""

from benchmarks.conftest import emit_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.report import render_table

POPULATION = 180
HOURS = 8.0


def test_baseline_strategies(benchmark):
    # Always reduced scale: three full systems per run (see ablations note).
    config = ExperimentConfig.scaled(POPULATION, duration_hours=HOURS)

    def run():
        return {
            "Flower-CDN": run_experiment("flower", config, seed=4),
            "Squirrel (directory)": run_experiment("squirrel", config, seed=4),
            "Squirrel (home-store)": run_experiment("squirrel-home", config, seed=4),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{result.hit_ratio:.3f}",
                f"{result.mean_lookup_latency_ms:.0f} ms",
                f"{result.mean_transfer_ms:.0f} ms",
                result.extra.get("forced_replicas", 0),
            ]
        )
    emit_report(
        "baseline_strategies",
        render_table(
            ["system", "hit ratio", "lookup", "transfer", "forced replicas"],
            rows,
            title=(
                f"both Squirrel strategies vs Flower-CDN "
                f"(P={config.population}, {config.duration_hours:.0f}h)"
            ),
        ),
    )

    flower = results["Flower-CDN"]
    directory = results["Squirrel (directory)"]
    homestore = results["Squirrel (home-store)"]
    # Flower beats both baselines on the locality metrics.
    for baseline in (directory, homestore):
        assert flower.mean_transfer_ms < baseline.mean_transfer_ms
        assert flower.mean_lookup_latency_ms < baseline.mean_lookup_latency_ms
    # Home-store forces peers to host content they never asked for
    # (the interest-awareness criticism, section 1).
    assert homestore.extra.get("forced_replicas", 0) > 0
    assert flower.extra.get("forced_replicas", 0) == 0
