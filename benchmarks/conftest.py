"""Shared infrastructure for the benchmark harness.

Every figure and table of the paper's evaluation (section 6) has one bench
module that regenerates its rows/series.  Scale policy (DESIGN.md §5):

- default: a reduced-scale configuration (same code paths, seconds of wall
  clock), so ``pytest benchmarks/ --benchmark-only`` is routinely runnable;
- ``REPRO_SCALE=full``: the paper's Table 1 configuration (P up to 5000,
  24 simulated hours -- expect tens of minutes).

Experiment runs are cached per (protocol, config, seed) for the whole
benchmark session: Figures 3, 4 and 5 all read the same P=3000-equivalent
pair of runs, so only the first bench pays for it (and is the one whose
timing is meaningful).  Every bench also writes its table to
``results/<bench>.txt`` so the regenerated rows survive the run.
"""

import os
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

FULL_SCALE = os.environ.get("REPRO_SCALE", "").lower() == "full"

#: Populations for the Table 2 sweep (paper: 2000/3000/4000/5000).
TABLE2_POPULATIONS = (
    (2000, 3000, 4000, 5000) if FULL_SCALE else (120, 180, 240, 300)
)

#: The population Figures 3-5 are reported at (paper: 3000).
HEADLINE_POPULATION = 3000 if FULL_SCALE else 240

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_config(population: int, **overrides) -> ExperimentConfig:
    """The benchmark configuration at the active scale."""
    if FULL_SCALE:
        return ExperimentConfig.paper(population=population, **overrides)
    defaults = dict(duration_hours=12.0)
    defaults.update(overrides)
    return ExperimentConfig.scaled(population=population, **defaults)


class ExperimentCache:
    """Session-wide memo of experiment runs keyed by (protocol, config, seed)."""

    def __init__(self):
        self._runs = {}

    def get(self, protocol: str, config: ExperimentConfig, seed: int = 1):
        key = (protocol, config, seed)
        if key not in self._runs:
            self._runs[key] = run_experiment(protocol, config, seed=seed)
        return self._runs[key]


@pytest.fixture(scope="session")
def experiments():
    return ExperimentCache()


def emit_report(name: str, text: str) -> None:
    """Print a bench report and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
