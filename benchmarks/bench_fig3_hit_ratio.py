"""Figure 3: hit ratio over time, Flower-CDN vs Squirrel (P = 3000).

Paper's finding: Squirrel's hit ratio rises faster at first (it searches
the whole overlay), then stops improving as churn keeps destroying its
home-node directories; Flower-CDN needs a warm-up but keeps climbing
("the improvement reaches 40% after 24 simulation hours").
"""

from benchmarks.conftest import HEADLINE_POPULATION, bench_config, emit_report
from repro.metrics.report import render_table


def test_fig3_hit_ratio_over_time(benchmark, experiments):
    config = bench_config(HEADLINE_POPULATION)

    def run():
        return (
            experiments.get("flower", config),
            experiments.get("squirrel", config),
        )

    flower, squirrel = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (hour, f_ratio), (__, s_ratio) in zip(
        flower.hit_ratio_curve, squirrel.hit_ratio_curve
    ):
        rows.append([f"{hour:.0f}", f"{f_ratio:.3f}", f"{s_ratio:.3f}"])
    rows.append(["final", f"{flower.hit_ratio:.3f}", f"{squirrel.hit_ratio:.3f}"])
    emit_report(
        "fig3_hit_ratio",
        render_table(
            ["hour", "Flower-CDN", "Squirrel"],
            rows,
            title=(
                f"Figure 3 -- hit ratio over time "
                f"(P={config.population}, {config.duration_hours:.0f}h)"
            ),
        ),
    )

    # Shape assertions from the paper's reading of the figure:
    # (1) Squirrel leads early (Flower needs its petals populated);
    early_flower = flower.hit_ratio_curve[0][1]
    early_squirrel = squirrel.hit_ratio_curve[0][1]
    assert early_squirrel > early_flower
    # (2) Flower overtakes and ends ahead;
    assert flower.hit_ratio > squirrel.hit_ratio
    # (3) Flower's curve keeps improving through the run.
    mid = flower.hit_ratio_curve[len(flower.hit_ratio_curve) // 2][1]
    assert flower.hit_ratio_curve[-1][1] > mid
