"""Micro-benchmarks of the substrates (genuine timing measurements).

These are classic pytest-benchmark loops over the hot inner operations of
the simulation: the event engine, Chord lookups on a warm ring, a Cyclon
shuffle round, Zipf sampling and the topology's latency metric.  They guard
against performance regressions that would make paper-scale runs (tens of
millions of events) impractical.
"""

import random

from repro.dht.ring import RingParams
from repro.net.topology import ClusteredTopology
from repro.sim.engine import Simulator
from repro.workload.zipf import ZipfSampler

from tests.dht.conftest import ChordWorld


def test_event_engine_throughput(benchmark):
    """Schedule-and-run cost of 10k chained events."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_chord_lookup_warm_ring(benchmark):
    """One recursive lookup on a stabilized 128-node ring."""
    world = ChordWorld(
        seed=3,
        params=RingParams(bits=16, maintenance_period_ms=60_000.0),
        lookup_mode="recursive",
    )
    ids = sorted(world.sim.rng("ids").sample(range(2**16), 128))
    hosts = world.warm_ring(ids)
    rng = world.sim.rng("bench")

    def run():
        key = rng.randrange(2**16)
        querier = hosts[rng.randrange(len(hosts))]
        return world.lookup_sync(querier, key)

    result = benchmark(run)
    assert result.ok


def test_zipf_sampling(benchmark):
    sampler = ZipfSampler(500, 0.8)
    rng = random.Random(1)
    benchmark(lambda: sampler.sample_many(rng, 1000))


def test_topology_latency_metric(benchmark):
    topology = ClusteredTopology(random.Random(1), num_clusters=6)
    for address in range(500):
        topology.register(address)
    rng = random.Random(2)

    def run():
        total = 0.0
        for __ in range(1000):
            total += topology.latency(rng.randrange(500), rng.randrange(500))
        return total

    assert benchmark(run) > 0


def test_gossip_round(benchmark):
    """One full shuffle round-trip between two live peers."""
    from repro.gossip.cyclon import CyclonProtocol
    from repro.gossip.view import Contact, PartialView
    from repro.net.topology import UniformRandomTopology
    from repro.net.transport import Network, NetworkNode

    sim = Simulator(seed=1)
    network = Network(sim, UniformRandomTopology(seed=1, latency_max_ms=50.0))

    class Peer(NetworkNode):
        def __init__(self):
            super().__init__(network)
            self.view = PartialView(owner=self.address)
            self.protocol = CyclonProtocol(
                self, self.view, sim.rng(f"g{self.address}")
            )

        def handle_gossip_shuffle(self, message):
            return self.protocol.handle_shuffle(message)

    peers = [Peer() for __ in range(20)]
    for a, b in zip(peers, peers[1:]):
        a.view.add(Contact(b.address))

    def run():
        for peer in peers:
            peer.protocol.gossip_round()
        sim.run(until=sim.now + 1000.0)

    benchmark(run)


def _synthetic_outboxes(num_shards=8, entries_per_shard=500):
    """Realistic cross-shard bus traffic: chord-style payloads, mixed kinds."""
    from repro.net.shardnet import MSG, REPLY

    rng = random.Random(9)
    outboxes = {}
    for src in range(num_shards):
        outbox = []
        for serial in range(entries_per_shard):
            dst_shard = rng.randrange(num_shards - 1)
            if dst_shard >= src:
                dst_shard += 1
            arrival = round(rng.uniform(0.0, 250.0), 6)
            if serial % 3 == 2:
                outbox.append(
                    (REPLY, arrival, dst_shard, (dst_shard, serial),
                     {"successor": (rng.getrandbits(30), rng.getrandbits(19)),
                      "hops": serial % 5},
                     rng.getrandbits(19))
                )
            else:
                outbox.append(
                    (MSG, arrival, dst_shard, rng.getrandbits(19),
                     "chord.find_successor",
                     {"key": rng.getrandbits(30), "hops": serial % 5,
                      "origin": rng.getrandbits(19)},
                     rng.getrandbits(19), arrival - 100.0, (src, serial))
                )
        outboxes[src] = outbox
    return outboxes


def test_bus_route_entries_merge(benchmark):
    """Canonical (arrival, src, serial) merge of 4k boundary entries.

    This is the per-barrier cost the sharded scheduler pays in the parent
    hub -- the serial section of every window, so it bounds multi-worker
    scaling directly (Amdahl).
    """
    from repro.sim.sharded import route_entries

    outboxes = _synthetic_outboxes()
    total = sum(len(v) for v in outboxes.values())
    inboxes = benchmark(lambda: route_entries(outboxes))
    assert sum(len(v) for v in inboxes.values()) == total


def test_bus_entry_serialization(benchmark):
    """Pickle round-trip of one shard's outbox (the per-window IPC cost).

    Boundary entries are plain tuples of primitives by design; this tracks
    the serialization price per entry crossing a process boundary.
    """
    import pickle

    outbox = _synthetic_outboxes()[0]

    def run():
        return pickle.loads(pickle.dumps(outbox, protocol=pickle.HIGHEST_PROTOCOL))

    assert len(benchmark(run)) == len(outbox)
