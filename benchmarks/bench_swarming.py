"""Swarming transfer robustness: cold vs warm seeder-death A/B.

The paper models a content fetch as one atomic RPC, so a serving peer
that dies mid-download is invisible by construction.  This bench makes
the failure mode observable: heavy-tailed object sizes over a
bandwidth-limited network (finite per-peer uplinks, a slice of them
slow), chunked transfers, and two mid-run seeder-death strikes that
crash the top uploaders -- the peers most likely to be carrying
somebody's transfer when they die.  The two arms differ only in the
transfer machinery:

- **cold** -- the single-source baseline: one provider, one chunk in
  flight, no chunk replication, and ``swarm_resume=False`` so any source
  failure discards all progress and re-fetches the whole object from the
  origin (the atomic-RPC behaviour, made chunk-visible);
- **warm** -- the swarming extension: parallel rarest-first chunk fetch
  from up to ``swarm_sources`` holders, k-replicated chunk placement
  across petal members, and per-chunk failover with resume -- completed
  chunks are never re-fetched, and only the *remaining* chunks degrade
  to the origin when every P2P source is gone.

The acceptance gates (ISSUE 9):

- warm terminally accounts **100%** of its transfers (so does cold):
  nothing open at the horizon beyond a short in-flight grace;
- warm **never restarts from zero** (``restarts == 0``) while cold,
  facing the same strikes, does;
- warm completes >= 99% of its started transfers (completed or
  degraded -- a transfer lost only to the downloader's own crash is
  terminally accounted but cannot complete);
- warm keeps **strictly more bytes off the origin** than cold
  (higher offload fraction).

CLI front door for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_swarming.py --quick \
        --output results/swarming_transfer.json

which exits non-zero when any gate fails.

Always reduced scale: each A/B runs two full systems end-to-end (see the
ablations note in bench_ablations.py).
"""

import argparse
import json
import sys
from typing import Dict, List, Optional

try:
    from benchmarks.conftest import emit_report
except ModuleNotFoundError:  # direct script invocation (CI smoke)
    import pathlib

    _RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

    def emit_report(name: str, text: str) -> None:
        print()
        print(text)
        _RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.metrics.distribution import Distribution
from repro.metrics.report import render_table
from repro.sim.clock import hours, minutes

POPULATION = 180
SEED = 17
DURATION_HOURS = 6.0

#: Strike schedule (fractions of the horizon): late enough that petals
#: formed, chunk replicas spread, and upload counters identify the real
#: seeders; far enough apart that the system re-converges between kills.
STRIKE_FRACTIONS = (0.45, 0.7)
STRIKE_COUNT = 4
#: A strike that finds no transfer in flight re-polls at this period
#: until one does: the whole point is killing a seeder *mid-transfer*,
#: and transfers are seconds long against an hours-long horizon.
STRIKE_POLL_MS = 500.0

#: A transfer still open at the horizon is only a leak if it had time to
#: terminate; anything started within this grace of the cut-off is
#: legitimately in flight (chunk retries back off up to 8 s, and a
#: degraded tail re-fetches its remaining chunks from the origin).
ACCOUNTING_GRACE = minutes(2.0)


def _swarm_config(
    warm: bool, population: int, duration_hours: float
) -> ExperimentConfig:
    return ExperimentConfig.scaled(
        population=population,
        duration_hours=duration_hours,
        num_websites=6,
        num_active_websites=2,
        num_localities=2,
        objects_per_website=40,
        # --- the shared transfer substrate (identical across arms) ---
        swarming=True,
        swarm_chunk_kb=64,
        object_mean_kb=256.0,
        object_max_kb=4096.0,
        bandwidth_kbps=4000.0,
        bandwidth_slow_fraction=0.2,
        bandwidth_slow_factor=8.0,
        # --- the machinery under test ---
        swarm_parallel=4 if warm else 1,
        swarm_sources=4 if warm else 1,
        swarm_resume=warm,
        swarm_replicate=2 if warm else 0,
    )


def _run_arm(warm: bool, population: int, duration_hours: float, seed: int) -> Dict:
    config = _swarm_config(warm, population, duration_hours)
    world = build_world("flower", config, seed)
    system = world.system
    bandwidth = world.network.bandwidth
    strikes_landed = []

    # Unlike the chaos lane (which strikes blind at a planned instant and
    # is legitimately inert when nothing is uploading), the A/B must
    # observe mid-transfer death: each strike polls until it catches
    # peers with chunk uploads in flight, then crashes the busiest.
    def strike() -> None:
        uploading = sorted(
            (
                peer
                for peer in system.peers.values()
                if peer.alive and bandwidth.active_flows(peer.address) > 0
            ),
            key=lambda p: (
                -bandwidth.active_flows(p.address),
                -p.bytes_uploaded,
                p.address,
            ),
        )
        if not uploading:
            world.sim.schedule(STRIKE_POLL_MS, strike)
            return
        for peer in uploading[:STRIKE_COUNT]:
            strikes_landed.append(peer.address)
            peer.crash()

    for fraction in STRIKE_FRACTIONS:
        world.sim.schedule(fraction * hours(duration_hours), strike)
    # Terminal transfer outcomes with elapsed times, straight off the
    # trace stream (subscribing enables the gated swarm.done emits).
    closes: List[Dict] = []
    world.sim.trace.subscribe(
        "swarm.done", lambda event: closes.append(dict(event.payload))
    )
    world.run()
    stats = system.stats().swarm.to_dict()
    # Terminal accounting: every transfer old enough to have terminated
    # must have closed (completed / degraded / failed); only transfers
    # started within the grace of the cut-off may still be open.
    cutoff = hours(duration_hours) - ACCOUNTING_GRACE
    open_at_end = 0
    stale_open = 0
    for peer in system.peers.values():
        for transfer in peer._swarms.values():
            open_at_end += 1
            if transfer.started_at < cutoff:
                stale_open += 1
    started = stats["transfers_started"]
    closed = (
        stats["transfers_completed"]
        + stats["transfers_degraded"]
        + stats["transfers_failed"]
    )
    finished = stats["transfers_completed"] + stats["transfers_degraded"]
    elapsed = Distribution(
        [c["elapsed_ms"] for c in closes if c["outcome"] != "failed"]
    )
    return {
        "warm": warm,
        "started": started,
        "completed": stats["transfers_completed"],
        "degraded": stats["transfers_degraded"],
        "failed": stats["transfers_failed"],
        "restarts": stats["restarts"],
        "chunk_retries": stats["chunk_retries"],
        "open_at_end": open_at_end,
        "stale_open": stale_open,
        "accounted_fraction": (closed + open_at_end) / started if started else 1.0,
        "completion_fraction": finished / started if started else 1.0,
        "p2p_bytes": stats["p2p_bytes"],
        "origin_bytes": stats["origin_bytes"],
        "offload_fraction": stats["offload_fraction"],
        "flows_aborted": stats.get("flows_aborted", 0),
        "slow_peers": stats.get("slow_peers", 0),
        "seeders_killed": len(strikes_landed),
        "transfer_p50_ms": elapsed.percentile(50.0),
        "transfer_p99_ms": elapsed.percentile(99.0),
        "hit_ratio": system.metrics.hit_ratio(),
        "hit_swarm": system.metrics.outcome_count("hit_swarm"),
        "miss_degraded": system.metrics.outcome_count("miss_degraded"),
    }


def run_cold_warm_ab(
    population: int = POPULATION,
    duration_hours: float = DURATION_HOURS,
    seed: int = SEED,
) -> Dict:
    """The cold (single-source restart) vs warm (swarming failover) A/B."""
    return {
        "cold": _run_arm(False, population, duration_hours, seed),
        "warm": _run_arm(True, population, duration_hours, seed),
    }


def _ab_table(ab: Dict, population: int, seed: int) -> str:
    rows = []
    for label in ("cold", "warm"):
        entry = ab[label]
        rows.append(
            [
                label,
                entry["started"],
                f"{entry['completion_fraction']:.1%}",
                entry["restarts"],
                entry["chunk_retries"],
                f"{entry['offload_fraction']:.1%}",
                f"{entry['origin_bytes'] / 1e6:.1f} MB",
                f"{entry['transfer_p50_ms']:.0f} ms",
                f"{entry['transfer_p99_ms']:.0f} ms",
                f"{entry['accounted_fraction']:.1%}",
            ]
        )
    return render_table(
        [
            "mode",
            "transfers",
            "finished",
            "restarts",
            "chunk retries",
            "offload",
            "origin traffic",
            "p50",
            "p99",
            "accounted",
        ],
        rows,
        title=(
            f"seeder death x{len(STRIKE_FRACTIONS)} (top {STRIKE_COUNT} "
            f"uploaders) over {POPULATION if population is None else population}"
            f" peers, seed={seed}, 4 Mbps uplinks (20% at 1/8 speed)"
        ),
    )


def _ab_acceptable(ab: Dict) -> bool:
    """The ISSUE 9 acceptance gates, all at once."""
    cold, warm = ab["cold"], ab["warm"]
    # 100% terminal accounting in both arms: nothing open at the horizon
    # beyond the in-flight grace.
    if cold["stale_open"] != 0 or warm["stale_open"] != 0:
        return False
    # Warm never restarts from zero; progress is resumed, not discarded.
    if warm["restarts"] != 0:
        return False
    # Warm completes (or cleanly degrades) >= 99% of started transfers.
    if warm["completion_fraction"] < 0.99:
        return False
    # Swarming keeps strictly more bytes off the origin.
    return warm["offload_fraction"] > cold["offload_fraction"]


def test_swarming_survives_seeder_death(benchmark):
    ab = benchmark.pedantic(run_cold_warm_ab, rounds=1, iterations=1)
    emit_report("swarming_transfer", _ab_table(ab, POPULATION, SEED))
    # The strikes actually bit: both arms lost chunk sources mid-flight.
    assert ab["cold"]["chunk_retries"] > 0
    assert ab["warm"]["chunk_retries"] > 0
    # The cold baseline pays for failures with restarts-from-zero.
    assert ab["cold"]["restarts"] > 0
    assert _ab_acceptable(ab)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI front door: run the seeder-death A/B and write the comparison."""
    parser = argparse.ArgumentParser(
        description="seeder-death cold vs warm swarming A/B"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller population (CI smoke)"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--output", metavar="PATH", help="write the A/B comparison as JSON"
    )
    args = parser.parse_args(argv)
    population = 100 if args.quick else POPULATION
    duration = 3.0 if args.quick else DURATION_HOURS
    ab = run_cold_warm_ab(
        population=population, duration_hours=duration, seed=args.seed
    )
    table = _ab_table(ab, population, args.seed)
    if args.quick:
        # Don't clobber the committed full-scale artifact with a smoke run.
        print(table)
    else:
        emit_report("swarming_transfer", table)
    ok = _ab_acceptable(ab)
    print(
        "swarming gates (accounting / no-restart / completion / offload): "
        + ("all pass" if ok else "FAIL -- regression in transfer failover")
    )
    if args.output:
        payload = {
            "population": population,
            "duration_hours": duration,
            "seed": args.seed,
            "gates_pass": ok,
            "cold": ab["cold"],
            "warm": ab["warm"],
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
