"""Figure 5: transfer-distance distribution (P = 3000).

Paper's finding: "the percentage of queries served from a distance within
100 ms is 62% for Flower-CDN and 22% for Squirrel" -- locality-aware petals
serve content from nearby providers; Squirrel redirects to random network
locations.

Byte-weighted extension: the paper counts *queries*, but with
heavy-tailed object sizes most of the actual traffic can ride on a few
large transfers.  The second table weights each query by its object's
size under the deterministic size model, answering "what fraction of the
*bytes* travelled within each distance band" -- the view that matters
once transfers are chunked and bandwidth-limited (ISSUE 9).
"""

from benchmarks.conftest import HEADLINE_POPULATION, bench_config, emit_report
from repro.metrics.distribution import TRANSFER_DISTANCE_EDGES
from repro.metrics.report import render_table


def fraction_below(cdf_points, threshold):
    best = 0.0
    for value, fraction in cdf_points:
        if value <= threshold:
            best = fraction
    return best


def test_fig5_transfer_distance_distribution(benchmark, experiments):
    config = bench_config(HEADLINE_POPULATION)

    def run():
        return (
            experiments.get("flower", config),
            experiments.get("squirrel", config),
        )

    flower, squirrel = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    previous = 0.0
    prev_f = prev_s = 0.0
    for edge in TRANSFER_DISTANCE_EDGES:
        f_below = fraction_below(flower.transfer_cdf, edge)
        s_below = fraction_below(squirrel.transfer_cdf, edge)
        label = f"<={edge:g} ms" if previous == 0.0 else f"{previous:g}-{edge:g} ms"
        rows.append([label, f"{f_below - prev_f:.1%}", f"{s_below - prev_s:.1%}"])
        previous, prev_f, prev_s = edge, f_below, s_below
    rows.append([f">{previous:g} ms", f"{1 - prev_f:.1%}", f"{1 - prev_s:.1%}"])

    byte_rows = []
    previous = 0.0
    prev_f = prev_s = 0.0
    for edge in TRANSFER_DISTANCE_EDGES:
        f_below = fraction_below(flower.transfer_cdf_bytes, edge)
        s_below = fraction_below(squirrel.transfer_cdf_bytes, edge)
        label = f"<={edge:g} ms" if previous == 0.0 else f"{previous:g}-{edge:g} ms"
        byte_rows.append([label, f"{f_below - prev_f:.1%}", f"{s_below - prev_s:.1%}"])
        previous, prev_f, prev_s = edge, f_below, s_below
    byte_rows.append([f">{previous:g} ms", f"{1 - prev_f:.1%}", f"{1 - prev_s:.1%}"])

    flower_100 = fraction_below(flower.transfer_cdf, 100.0)
    squirrel_100 = fraction_below(squirrel.transfer_cdf, 100.0)
    flower_100_bytes = fraction_below(flower.transfer_cdf_bytes, 100.0)
    squirrel_100_bytes = fraction_below(squirrel.transfer_cdf_bytes, 100.0)
    emit_report(
        "fig5_transfer_distance",
        render_table(
            ["transfer distance", "Flower-CDN", "Squirrel"],
            rows,
            title=(
                f"Figure 5 -- transfer distance distribution "
                f"(P={config.population})"
            ),
        )
        + "\n\n"
        + render_table(
            ["transfer distance", "Flower-CDN", "Squirrel"],
            byte_rows,
            title=(
                f"Figure 5 (byte-weighted) -- fraction of *bytes* per "
                f"distance band (P={config.population})"
            ),
        )
        + (
            f"\npaper: 62% of Flower vs 22% of Squirrel within 100 ms\n"
            f"measured: {flower_100:.0%} of Flower vs {squirrel_100:.0%} of "
            f"Squirrel within 100 ms"
            f"\nbyte-weighted: {flower_100_bytes:.0%} of Flower bytes vs "
            f"{squirrel_100_bytes:.0%} of Squirrel bytes within 100 ms"
        ),
    )

    # Shape: Flower serves from much closer providers.
    assert flower_100 > 1.5 * squirrel_100
    assert flower.mean_transfer_ms < squirrel.mean_transfer_ms
    # The locality win survives byte-weighting: most of Flower's *traffic*
    # stays close too, not just most of its queries.
    assert flower_100_bytes > 1.5 * squirrel_100_bytes
    assert flower.mean_transfer_bytes_ms < squirrel.mean_transfer_bytes_ms
