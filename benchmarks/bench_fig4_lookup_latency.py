"""Figure 4: lookup-latency distribution (P = 3000).

Paper's finding: "66% of our queries are resolved within 150 ms while 75%
of Squirrel's queries take more than 1200 ms" -- Squirrel navigates the
whole DHT per query; Flower-CDN resolves most queries inside the petal.
"""

from benchmarks.conftest import HEADLINE_POPULATION, bench_config, emit_report
from repro.metrics.distribution import LOOKUP_LATENCY_EDGES
from repro.metrics.report import render_table


def test_fig4_lookup_latency_distribution(benchmark, experiments):
    config = bench_config(HEADLINE_POPULATION)

    def run():
        return (
            experiments.get("flower", config),
            experiments.get("squirrel", config),
        )

    flower, squirrel = benchmark.pedantic(run, rounds=1, iterations=1)

    flower_cdf = dict(flower.lookup_cdf)
    squirrel_cdf = dict(squirrel.lookup_cdf)

    def fraction_below(cdf_points, threshold):
        best = 0.0
        for value, fraction in cdf_points:
            if value <= threshold:
                best = fraction
        return best

    rows = []
    # Rebuild the paper's histogram buckets from the stored CDFs.
    previous = 0.0
    prev_f = prev_s = 0.0
    for edge in LOOKUP_LATENCY_EDGES:
        f_below = fraction_below(flower.lookup_cdf, edge)
        s_below = fraction_below(squirrel.lookup_cdf, edge)
        label = f"<={edge:g} ms" if previous == 0.0 else f"{previous:g}-{edge:g} ms"
        rows.append([label, f"{f_below - prev_f:.1%}", f"{s_below - prev_s:.1%}"])
        previous, prev_f, prev_s = edge, f_below, s_below
    rows.append([f">{previous:g} ms", f"{1 - prev_f:.1%}", f"{1 - prev_s:.1%}"])

    emit_report(
        "fig4_lookup_latency",
        render_table(
            ["lookup latency", "Flower-CDN", "Squirrel"],
            rows,
            title=(
                f"Figure 4 -- lookup latency distribution "
                f"(P={config.population})"
            ),
        )
        + (
            f"\npaper: 66% of Flower queries <=150 ms; "
            f"75% of Squirrel queries >1200 ms\n"
            f"measured: {fraction_below(flower.lookup_cdf, 150.0):.0%} of "
            f"Flower <=150 ms; "
            f"{1 - fraction_below(squirrel.lookup_cdf, 1200.0):.0%} of "
            f"Squirrel >1200 ms"
        ),
    )

    # Shape: Flower concentrates below 150 ms far more than Squirrel, and
    # the bulk of Squirrel's mass sits beyond 1200 ms.
    assert fraction_below(flower.lookup_cdf, 150.0) > 2 * fraction_below(
        squirrel.lookup_cdf, 150.0
    )
    assert (1 - fraction_below(squirrel.lookup_cdf, 1200.0)) > 0.3
    assert flower.mean_lookup_latency_ms < squirrel.mean_lookup_latency_ms
