"""End-to-end engine benchmark with a tracked JSON baseline.

Unlike the pytest-benchmark micro-loops in :mod:`benchmarks.bench_micro`,
this script times the *whole* canonical Flower-CDN scenario -- world
construction excluded, ``world.run()`` only -- and reports the three
numbers the performance work is tracked by:

- **events/sec** -- simulator dispatch throughput,
- **queries/sec** -- end-to-end application throughput,
- **peak pending events** -- the high-water mark of the event queue.

It also records the run's determinism fingerprint (``events_executed``
and ``hit_ratio``): an optimization that changes either is a behaviour
change, not a speedup, and must be rejected.

Usage::

    # Full canonical measurement, written to BENCH_engine.json:
    PYTHONPATH=src python benchmarks/bench_engine.py

    # Interleaved A/B against an unmodified checkout (best-of-N of each,
    # alternating subprocesses so machine noise hits both sides equally):
    PYTHONPATH=src python benchmarks/bench_engine.py \
        --baseline-src /tmp/baseline-wt/src

    # CI smoke: quick scenario + machine-normalized regression gate:
    PYTHONPATH=src python benchmarks/bench_engine.py --quick \
        --check BENCH_engine.json

Methodology notes:

- Timings use :func:`time.process_time` (CPU time), which is immune to
  wall-clock scheduling noise but not to frequency scaling or noisy
  cache neighbours; each configuration is therefore run ``--rounds``
  times and the **minimum** is reported (the minimum is the run with the
  least interference).
- A/B comparisons alternate AFTER/BEFORE subprocesses within each round
  rather than running all of one side first, so slow machine windows
  penalise both sides.
- ``--check`` never compares raw events/sec across machines.  It divides
  the scenario throughput by a pure-Python calibration loop timed on the
  same machine in the same process, and compares that *normalized* ratio
  against the one stored in the JSON.  A >30% drop fails the check.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Regression threshold for ``--check``: fail when the machine-normalized
#: throughput falls below (1 - threshold) of the stored reference.
REGRESSION_THRESHOLD = 0.30

CANONICAL = {"population": 240, "duration_hours": 12.0}
QUICK = {"population": 120, "duration_hours": 3.0}
PROTOCOL = "flower"
SEED = 1


# --------------------------------------------------------------- measurement
def measure_once(quick: bool) -> Dict[str, Any]:
    """Build the scenario world, run it under a CPU timer, report stats."""
    # Imported lazily so ``--one-shot`` subprocesses pay import cost before
    # the timer starts, and so the module can be imported without PYTHONPATH.
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import build_world

    params = QUICK if quick else CANONICAL
    config = ExperimentConfig.scaled(**params)
    world = build_world(PROTOCOL, config, SEED)
    start = time.process_time()
    world.run()
    seconds = time.process_time() - start
    sim = world.sim
    metrics = world.system.metrics
    queries = len(metrics.records)
    return {
        "seconds": round(seconds, 4),
        "events_executed": sim.events_executed,
        "events_per_sec": round(sim.events_executed / seconds, 1),
        "queries": queries,
        "queries_per_sec": round(queries / seconds, 1),
        # Older checkouts (the "before" side of an A/B) predate peak
        # tracking; report 0 rather than crash.
        "peak_pending_events": getattr(sim, "peak_pending_events", 0),
        "hit_ratio": metrics.hit_ratio(),
    }


def best_of(rounds: int, quick: bool) -> Dict[str, Any]:
    """In-process best-of-N: minimum seconds, with a fingerprint check."""
    runs = [measure_once(quick) for _ in range(rounds)]
    _assert_deterministic(runs)
    return min(runs, key=lambda r: r["seconds"])


def _assert_deterministic(runs: List[Dict[str, Any]]) -> None:
    fingerprints = {(r["events_executed"], r["hit_ratio"]) for r in runs}
    if len(fingerprints) != 1:
        raise SystemExit(f"non-deterministic runs: {sorted(fingerprints)}")


# ------------------------------------------------------------- A/B harness
def _one_shot_subprocess(src: str, quick: bool) -> Dict[str, Any]:
    """Run one measurement in a fresh interpreter with *src* on PYTHONPATH."""
    cmd = [sys.executable, __file__, "--one-shot"]
    if quick:
        cmd.append("--quick")
    out = subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    return json.loads(out.stdout)


def interleaved_ab(
    after_src: str, before_src: str, rounds: int, quick: bool
) -> Dict[str, Any]:
    """Alternate AFTER/BEFORE subprocesses; compare best-of-N to best-of-N."""
    after_runs: List[Dict[str, Any]] = []
    before_runs: List[Dict[str, Any]] = []
    for i in range(rounds):
        a = _one_shot_subprocess(after_src, quick)
        b = _one_shot_subprocess(before_src, quick)
        after_runs.append(a)
        before_runs.append(b)
        print(
            f"  round {i + 1}: after {a['seconds']:.3f}s "
            f"({a['events_per_sec']:,.0f} ev/s)  "
            f"before {b['seconds']:.3f}s ({b['events_per_sec']:,.0f} ev/s)",
            file=sys.stderr,
        )
    _assert_deterministic(after_runs)
    _assert_deterministic(before_runs)
    # The two sides must simulate the *same* system: identical event
    # streams and identical query results, or the speedup is meaningless.
    if (
        after_runs[0]["events_executed"] != before_runs[0]["events_executed"]
        or after_runs[0]["hit_ratio"] != before_runs[0]["hit_ratio"]
    ):
        raise SystemExit(
            "A/B fingerprint mismatch: "
            f"after={after_runs[0]['events_executed']}/{after_runs[0]['hit_ratio']} "
            f"before={before_runs[0]['events_executed']}/{before_runs[0]['hit_ratio']}"
        )
    after = min(after_runs, key=lambda r: r["seconds"])
    before = min(before_runs, key=lambda r: r["seconds"])
    return {
        "after": after,
        "before": before,
        "speedup": round(after["events_per_sec"] / before["events_per_sec"], 3),
    }


# -------------------------------------------------------------- calibration
def calibrate() -> float:
    """Pure-Python ops/sec of this machine, for cross-machine normalization.

    The loop exercises the interpreter operations the simulator leans on
    (list append/pop, dict get/set, float arithmetic, function calls) but
    touches none of the simulator's own code, so engine optimizations do
    not move it.  Scenario throughput divided by this number is a
    machine-relative figure that *can* be compared across hosts.
    """
    n = 200_000
    best = float("inf")
    for _ in range(3):
        start = time.process_time()
        acc = 0.0
        stack: List[float] = []
        table: Dict[int, float] = {}
        append = stack.append
        pop = stack.pop
        for i in range(n):
            append(i * 0.5)
            table[i & 1023] = pop() + 1.0
            acc += table.get(i & 1023, 0.0)
        elapsed = time.process_time() - start
        best = min(best, elapsed)
    return round(n / best, 1)


# --------------------------------------------------------------------- main
def run_check(path: Path, rounds: int) -> int:
    """CI gate: quick scenario, machine-normalized, 30% tolerance."""
    stored = json.loads(path.read_text())
    reference = stored.get("quick", {}).get("normalized")
    if reference is None:
        print(f"{path} has no quick.normalized reference; run --quick first")
        return 2
    calib = calibrate()
    result = best_of(rounds, quick=True)
    normalized = result["events_per_sec"] / calib
    floor = reference * (1.0 - REGRESSION_THRESHOLD)
    print(
        f"quick scenario: {result['events_per_sec']:,.0f} ev/s, "
        f"calibration {calib:,.0f} ops/s, normalized {normalized:.3f} "
        f"(reference {reference:.3f}, floor {floor:.3f})"
    )
    if normalized < floor:
        print(f"FAIL: >{REGRESSION_THRESHOLD:.0%} regression")
        return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small scenario (CI smoke)"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of-N rounds (default 3)"
    )
    parser.add_argument(
        "--baseline-src",
        help="path to an unmodified src tree; enables interleaved A/B",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="where to write/update the JSON report",
    )
    parser.add_argument(
        "--check",
        metavar="JSON",
        help="compare a quick run against the stored normalized reference; "
        f"exit 1 on a >{REGRESSION_THRESHOLD:.0%} regression",
    )
    parser.add_argument(
        "--one-shot",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: single measurement as JSON
    )
    args = parser.parse_args(argv)

    if args.one_shot:
        print(json.dumps(measure_once(args.quick)))
        return 0

    if args.check:
        return run_check(Path(args.check), args.rounds)

    out_path = Path(args.output)
    report: Dict[str, Any] = (
        json.loads(out_path.read_text()) if out_path.exists() else {}
    )
    report["schema"] = 1
    report["scenario"] = {
        "protocol": PROTOCOL,
        "seed": SEED,
        "canonical": CANONICAL,
        "quick": QUICK,
    }
    report["machine"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    calib = calibrate()
    report["calibration_ops_per_sec"] = calib

    if args.baseline_src:
        here_src = str(Path(__file__).resolve().parent.parent / "src")
        print(f"interleaved A/B, {args.rounds} rounds:", file=sys.stderr)
        ab = interleaved_ab(here_src, args.baseline_src, args.rounds, args.quick)
        section = "quick" if args.quick else "canonical"
        report[section] = ab
        report[section]["after"]["normalized"] = round(
            ab["after"]["events_per_sec"] / calib, 5
        )
        if args.quick:
            report["quick"]["normalized"] = report["quick"]["after"]["normalized"]
        print(
            f"{section}: {ab['after']['events_per_sec']:,.0f} ev/s vs "
            f"{ab['before']['events_per_sec']:,.0f} ev/s -> {ab['speedup']}x"
        )
    else:
        result = best_of(args.rounds, args.quick)
        section = "quick" if args.quick else "canonical"
        entry = dict(result)
        entry["normalized"] = round(result["events_per_sec"] / calib, 5)
        existing = report.get(section)
        if isinstance(existing, dict) and "after" in existing:
            existing["after"] = entry
            if "before" in existing and existing["before"].get("events_per_sec"):
                existing["speedup"] = round(
                    entry["events_per_sec"] / existing["before"]["events_per_sec"],
                    3,
                )
        else:
            report[section] = {"after": entry}
        if args.quick:
            report["quick"]["normalized"] = entry["normalized"]
        print(
            f"{section}: {entry['events_per_sec']:,.0f} ev/s, "
            f"{entry['queries_per_sec']:,.0f} q/s, "
            f"peak queue {entry['peak_pending_events']:,}"
        )

    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
