"""End-to-end engine benchmark with a tracked JSON baseline.

Unlike the pytest-benchmark micro-loops in :mod:`benchmarks.bench_micro`,
this script times the *whole* canonical Flower-CDN scenario -- world
construction excluded, ``world.run()`` only -- and reports the three
numbers the performance work is tracked by:

- **events/sec** -- simulator dispatch throughput,
- **queries/sec** -- end-to-end application throughput,
- **peak pending events** -- the high-water mark of the event queue.

It also records the run's determinism fingerprint (``events_executed``
and ``hit_ratio``): an optimization that changes either is a behaviour
change, not a speedup, and must be rejected.

Usage::

    # Full canonical measurement, written to BENCH_engine.json:
    PYTHONPATH=src python benchmarks/bench_engine.py

    # Interleaved A/B against an unmodified checkout (best-of-N of each,
    # alternating subprocesses so machine noise hits both sides equally):
    PYTHONPATH=src python benchmarks/bench_engine.py \
        --baseline-src /tmp/baseline-wt/src

    # CI smoke: quick scenario + machine-normalized regression gate:
    PYTHONPATH=src python benchmarks/bench_engine.py --quick \
        --check BENCH_engine.json

Methodology notes:

- Timings use :func:`time.process_time` (CPU time), which is immune to
  wall-clock scheduling noise but not to frequency scaling or noisy
  cache neighbours; each configuration is therefore run ``--rounds``
  times and the **minimum** is reported (the minimum is the run with the
  least interference).
- A/B comparisons alternate AFTER/BEFORE subprocesses within each round
  rather than running all of one side first, so slow machine windows
  penalise both sides.
- ``--check`` never compares raw events/sec across machines.  It divides
  the scenario throughput by a pure-Python calibration loop timed on the
  same machine in the same process, and compares that *normalized* ratio
  against the one stored in the JSON.  A >30% drop fails the check.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Regression threshold for ``--check``: fail when the machine-normalized
#: throughput falls below (1 - threshold) of the stored reference.
REGRESSION_THRESHOLD = 0.30

CANONICAL = {"population": 240, "duration_hours": 12.0}
QUICK = {"population": 120, "duration_hours": 3.0}
PROTOCOL = "flower"
SEED = 1

#: Sharded-engine scaling scenarios (``--sharded-curve``).  8 localities ->
#: 8 shards, so worker counts 1/2/4/8 all divide the map.
SHARDED_CANONICAL = {
    "population": 2000,
    "duration_hours": 1.0,
    "num_websites": 16,
    "num_active_websites": 4,
    "num_localities": 8,
    "objects_per_website": 100,
}
SHARDED_QUICK = {
    "population": 480,
    "duration_hours": 0.5,
    "num_websites": 8,
    "num_active_websites": 2,
    "num_localities": 8,
    "objects_per_website": 50,
}
SHARDED_WORKERS = [1, 2, 4, 8]
SHARDED_QUICK_WORKERS = [1, 2]

#: Large-population demonstration run (``--scale-run``).
SCALE_RUN = {
    "population": 50_000,
    "duration_hours": 0.5,
    "num_websites": 16,
    "num_active_websites": 4,
    "num_localities": 8,
    "objects_per_website": 100,
}
SCALE_RUN_WORKERS = 8


# --------------------------------------------------------------- measurement
def measure_once(quick: bool) -> Dict[str, Any]:
    """Build the scenario world, run it under a CPU timer, report stats."""
    # Imported lazily so ``--one-shot`` subprocesses pay import cost before
    # the timer starts, and so the module can be imported without PYTHONPATH.
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import build_world

    params = QUICK if quick else CANONICAL
    config = ExperimentConfig.scaled(**params)
    world = build_world(PROTOCOL, config, SEED)
    start = time.process_time()
    world.run()
    seconds = time.process_time() - start
    sim = world.sim
    metrics = world.system.metrics
    queries = len(metrics.records)
    result = {
        "seconds": round(seconds, 4),
        "events_executed": sim.events_executed,
        "events_per_sec": round(sim.events_executed / seconds, 1),
        "queries": queries,
        "queries_per_sec": round(queries / seconds, 1),
        "hit_ratio": metrics.hit_ratio(),
    }
    # Older checkouts (the "before" side of an A/B) predate peak tracking;
    # omit the key there rather than report a misleading 0.
    peak = getattr(sim, "peak_pending_events", None)
    if peak is not None:
        result["peak_pending_events"] = peak
    return result


def best_of(rounds: int, quick: bool) -> Dict[str, Any]:
    """In-process best-of-N: minimum seconds, with a fingerprint check."""
    runs = [measure_once(quick) for _ in range(rounds)]
    _assert_deterministic(runs)
    return min(runs, key=lambda r: r["seconds"])


def _assert_deterministic(runs: List[Dict[str, Any]]) -> None:
    fingerprints = {(r["events_executed"], r["hit_ratio"]) for r in runs}
    if len(fingerprints) != 1:
        raise SystemExit(f"non-deterministic runs: {sorted(fingerprints)}")


# ------------------------------------------------------------- A/B harness
def _one_shot_subprocess(src: str, quick: bool) -> Dict[str, Any]:
    """Run one measurement in a fresh interpreter with *src* on PYTHONPATH."""
    cmd = [sys.executable, __file__, "--one-shot"]
    if quick:
        cmd.append("--quick")
    out = subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    return json.loads(out.stdout)


def interleaved_ab(
    after_src: str, before_src: str, rounds: int, quick: bool
) -> Dict[str, Any]:
    """Alternate AFTER/BEFORE subprocesses; compare best-of-N to best-of-N."""
    after_runs: List[Dict[str, Any]] = []
    before_runs: List[Dict[str, Any]] = []
    for i in range(rounds):
        a = _one_shot_subprocess(after_src, quick)
        b = _one_shot_subprocess(before_src, quick)
        after_runs.append(a)
        before_runs.append(b)
        print(
            f"  round {i + 1}: after {a['seconds']:.3f}s "
            f"({a['events_per_sec']:,.0f} ev/s)  "
            f"before {b['seconds']:.3f}s ({b['events_per_sec']:,.0f} ev/s)",
            file=sys.stderr,
        )
    _assert_deterministic(after_runs)
    _assert_deterministic(before_runs)
    # The two sides must simulate the *same* system: identical event
    # streams and identical query results, or the speedup is meaningless.
    if (
        after_runs[0]["events_executed"] != before_runs[0]["events_executed"]
        or after_runs[0]["hit_ratio"] != before_runs[0]["hit_ratio"]
    ):
        raise SystemExit(
            "A/B fingerprint mismatch: "
            f"after={after_runs[0]['events_executed']}/{after_runs[0]['hit_ratio']} "
            f"before={before_runs[0]['events_executed']}/{before_runs[0]['hit_ratio']}"
        )
    after = min(after_runs, key=lambda r: r["seconds"])
    before = min(before_runs, key=lambda r: r["seconds"])
    return {
        "after": after,
        "before": before,
        "speedup": round(after["events_per_sec"] / before["events_per_sec"], 3),
    }


# ---------------------------------------------------------- sharded scaling
def _host_cpus() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def measure_sharded_once(params: Dict[str, Any], workers: int) -> Dict[str, Any]:
    """One sharded run under a wall-clock timer.

    Wall clock (``time.perf_counter``), not CPU time: with workers > 1 the
    simulation happens in child processes, which ``time.process_time``
    does not count.  World construction is included (it happens inside the
    workers and cannot be separated out), so these numbers are not directly
    comparable with :func:`measure_once`.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.sharded import run_sharded_experiment

    config = ExperimentConfig.scaled(**params)
    start = time.perf_counter()
    result = run_sharded_experiment(PROTOCOL, config, seed=SEED, workers=workers)
    seconds = time.perf_counter() - start
    sharded = result.extra["sharded"]
    return {
        "workers": workers,
        "seconds": round(seconds, 4),
        "events_executed": result.events_executed,
        "events_per_sec": round(result.events_executed / seconds, 1),
        "queries": result.queries,
        "hit_ratio": result.hit_ratio,
        "num_shards": sharded["num_shards"],
        "window_ms": sharded["window_ms"],
        "bus_entries": sharded["bus_entries"],
        "peak_pending_events": sharded["peak_pending_events"],
    }


def sharded_curve(quick: bool, rounds: int) -> Dict[str, Any]:
    """Events/sec at increasing worker counts, invariance-checked.

    Every worker count must reproduce the workers=1 merged results exactly
    (same events, same hit ratio) -- a speedup that changes the simulation
    is a bug, not a speedup.
    """
    params = SHARDED_QUICK if quick else SHARDED_CANONICAL
    worker_counts = SHARDED_QUICK_WORKERS if quick else SHARDED_WORKERS
    curve: List[Dict[str, Any]] = []
    for workers in worker_counts:
        runs = [measure_sharded_once(params, workers) for _ in range(rounds)]
        _assert_deterministic(runs)
        best = min(runs, key=lambda r: r["seconds"])
        curve.append(best)
        print(
            f"  workers={workers}: {best['seconds']:.2f}s "
            f"({best['events_per_sec']:,.0f} ev/s, "
            f"{best['bus_entries']:,} bus entries)",
            file=sys.stderr,
        )
    reference = curve[0]
    for point in curve[1:]:
        if (
            point["events_executed"] != reference["events_executed"]
            or point["hit_ratio"] != reference["hit_ratio"]
        ):
            raise SystemExit(
                f"worker-count invariance violation: workers={point['workers']} "
                f"produced {point['events_executed']}/{point['hit_ratio']} vs "
                f"{reference['events_executed']}/{reference['hit_ratio']} at 1"
            )
        point["speedup_vs_1"] = round(
            point["events_per_sec"] / reference["events_per_sec"], 3
        )
    reference["speedup_vs_1"] = 1.0
    return {
        "scenario": dict(params),
        "seed": SEED,
        "host_cpus": _host_cpus(),
        "clock": "wall (time.perf_counter); construction included",
        "curve": curve,
    }


def scale_run() -> Dict[str, Any]:
    """One large-population run (P=50k) as a completion demonstration."""
    print(
        f"  scale run: P={SCALE_RUN['population']:,}, "
        f"workers={SCALE_RUN_WORKERS} ...",
        file=sys.stderr,
    )
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.sharded import run_sharded_experiment

    config = ExperimentConfig.scaled(**SCALE_RUN)
    start = time.perf_counter()
    result = run_sharded_experiment(
        PROTOCOL, config, seed=SEED, workers=SCALE_RUN_WORKERS
    )
    seconds = time.perf_counter() - start
    return {
        "scenario": dict(SCALE_RUN),
        "workers": SCALE_RUN_WORKERS,
        "seed": SEED,
        "host_cpus": _host_cpus(),
        "seconds": round(seconds, 2),
        "events_executed": result.events_executed,
        "queries": result.queries,
        "hit_ratio": result.hit_ratio,
        "mean_lookup_latency_ms": result.mean_lookup_latency_ms,
        "mean_transfer_ms": result.mean_transfer_ms,
        "bus_entries": result.extra["sharded"]["bus_entries"],
    }


# -------------------------------------------------------------- calibration
def calibrate() -> float:
    """Pure-Python ops/sec of this machine, for cross-machine normalization.

    The loop exercises the interpreter operations the simulator leans on
    (list append/pop, dict get/set, float arithmetic, function calls) but
    touches none of the simulator's own code, so engine optimizations do
    not move it.  Scenario throughput divided by this number is a
    machine-relative figure that *can* be compared across hosts.
    """
    n = 200_000
    best = float("inf")
    for _ in range(3):
        start = time.process_time()
        acc = 0.0
        stack: List[float] = []
        table: Dict[int, float] = {}
        append = stack.append
        pop = stack.pop
        for i in range(n):
            append(i * 0.5)
            table[i & 1023] = pop() + 1.0
            acc += table.get(i & 1023, 0.0)
        elapsed = time.process_time() - start
        best = min(best, elapsed)
    return round(n / best, 1)


# --------------------------------------------------------------------- main
def run_check(path: Path, rounds: int) -> int:
    """CI gate: quick scenario, machine-normalized, 30% tolerance."""
    stored = json.loads(path.read_text())
    reference = stored.get("quick", {}).get("normalized")
    if reference is None:
        print(f"{path} has no quick.normalized reference; run --quick first")
        return 2
    calib = calibrate()
    result = best_of(rounds, quick=True)
    normalized = result["events_per_sec"] / calib
    floor = reference * (1.0 - REGRESSION_THRESHOLD)
    print(
        f"quick scenario: {result['events_per_sec']:,.0f} ev/s, "
        f"calibration {calib:,.0f} ops/s, normalized {normalized:.3f} "
        f"(reference {reference:.3f}, floor {floor:.3f})"
    )
    if normalized < floor:
        print(f"FAIL: >{REGRESSION_THRESHOLD:.0%} regression")
        return 1
    sharded_ref = stored.get("sharded_scaling", {}).get("quick_normalized")
    if sharded_ref is not None:
        runs = [
            measure_sharded_once(SHARDED_QUICK, workers=1) for _ in range(rounds)
        ]
        _assert_deterministic(runs)
        best = min(runs, key=lambda r: r["seconds"])
        sharded_normalized = best["events_per_sec"] / calib
        sharded_floor = sharded_ref * (1.0 - REGRESSION_THRESHOLD)
        print(
            f"sharded quick: {best['events_per_sec']:,.0f} ev/s, "
            f"normalized {sharded_normalized:.3f} "
            f"(reference {sharded_ref:.3f}, floor {sharded_floor:.3f})"
        )
        if sharded_normalized < sharded_floor:
            print(f"FAIL: >{REGRESSION_THRESHOLD:.0%} sharded regression")
            return 1
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small scenario (CI smoke)"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of-N rounds (default 3)"
    )
    parser.add_argument(
        "--baseline-src",
        help="path to an unmodified src tree; enables interleaved A/B",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="where to write/update the JSON report",
    )
    parser.add_argument(
        "--check",
        metavar="JSON",
        help="compare a quick run against the stored normalized reference; "
        f"exit 1 on a >{REGRESSION_THRESHOLD:.0%} regression",
    )
    parser.add_argument(
        "--sharded-curve",
        action="store_true",
        help="measure the sharded engine's worker-scaling curve (wall clock)",
    )
    parser.add_argument(
        "--scale-run",
        action="store_true",
        help=f"run the P={SCALE_RUN['population']:,} sharded demonstration",
    )
    parser.add_argument(
        "--one-shot",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: single measurement as JSON
    )
    args = parser.parse_args(argv)

    if args.one_shot:
        print(json.dumps(measure_once(args.quick)))
        return 0

    if args.check:
        return run_check(Path(args.check), args.rounds)

    if args.sharded_curve or args.scale_run:
        out_path = Path(args.output)
        report = json.loads(out_path.read_text()) if out_path.exists() else {}
        if args.sharded_curve:
            section = "quick" if args.quick else "canonical"
            print(f"sharded scaling curve ({section}):", file=sys.stderr)
            curve = sharded_curve(args.quick, args.rounds)
            scaling = report.setdefault("sharded_scaling", {})
            scaling[section] = curve
            if args.quick:
                scaling["quick_normalized"] = round(
                    curve["curve"][0]["events_per_sec"] / calibrate(), 5
                )
            best = max(curve["curve"], key=lambda p: p["speedup_vs_1"])
            print(
                f"sharded {section}: best speedup {best['speedup_vs_1']}x at "
                f"workers={best['workers']} on a {curve['host_cpus']}-CPU host"
            )
        if args.scale_run:
            entry = scale_run()
            report["sharded_scale_run"] = entry
            print(
                f"scale run: P={entry['scenario']['population']:,} finished in "
                f"{entry['seconds']:.1f}s -- hit {entry['hit_ratio']:.3f}, "
                f"lookup {entry['mean_lookup_latency_ms']:.0f} ms over "
                f"{entry['queries']:,} queries"
            )
        out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path}")
        return 0

    out_path = Path(args.output)
    report: Dict[str, Any] = (
        json.loads(out_path.read_text()) if out_path.exists() else {}
    )
    report["schema"] = 1
    report["scenario"] = {
        "protocol": PROTOCOL,
        "seed": SEED,
        "canonical": CANONICAL,
        "quick": QUICK,
    }
    report["machine"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    calib = calibrate()
    report["calibration_ops_per_sec"] = calib

    if args.baseline_src:
        here_src = str(Path(__file__).resolve().parent.parent / "src")
        print(f"interleaved A/B, {args.rounds} rounds:", file=sys.stderr)
        ab = interleaved_ab(here_src, args.baseline_src, args.rounds, args.quick)
        section = "quick" if args.quick else "canonical"
        report[section] = ab
        report[section]["after"]["normalized"] = round(
            ab["after"]["events_per_sec"] / calib, 5
        )
        if args.quick:
            report["quick"]["normalized"] = report["quick"]["after"]["normalized"]
        print(
            f"{section}: {ab['after']['events_per_sec']:,.0f} ev/s vs "
            f"{ab['before']['events_per_sec']:,.0f} ev/s -> {ab['speedup']}x"
        )
    else:
        result = best_of(args.rounds, args.quick)
        section = "quick" if args.quick else "canonical"
        entry = dict(result)
        entry["normalized"] = round(result["events_per_sec"] / calib, 5)
        existing = report.get(section)
        if isinstance(existing, dict) and "after" in existing:
            existing["after"] = entry
            if "before" in existing and existing["before"].get("events_per_sec"):
                existing["speedup"] = round(
                    entry["events_per_sec"] / existing["before"]["events_per_sec"],
                    3,
                )
        else:
            report[section] = {"after": entry}
        if args.quick:
            report["quick"]["normalized"] = entry["normalized"]
        print(
            f"{section}: {entry['events_per_sec']:,.0f} ev/s, "
            f"{entry['queries_per_sec']:,.0f} q/s, "
            f"peak queue {entry['peak_pending_events']:,}"
        )

    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
