"""Fault recovery: partition-and-heal, bursty loss, and cold-vs-warm failover.

The paper's robustness claim (sections 1 and 6.3) is argued through churn
alone; this bench subjects both systems to the harder faults the
fault-injection subsystem (:mod:`repro.net.faults`) provides and reports
the recovery metrics the claim implies:

- **partition and heal** -- cut locality 0 off the backbone for two
  simulated hours.  Flower-CDN's per-locality directories keep serving the
  cut locality from inside, so its availability and hit ratio degrade less
  than Squirrel's single global ring, and both numbers return to baseline
  after the heal (time-to-recover is finite);
- **bursty loss** -- a Gilbert-Elliott channel at ~10% stationary loss.
  With the retry/backoff RPC layer enabled (the default) Flower's hit
  ratio is strictly better than the seed's single-shot behaviour
  (``rpc_retries=0``) at the same loss rate and seed;
- **cold vs warm failover** -- the same partition plus a total directory
  wipe inside the cut, run once with replication off (the paper's cold
  replacement of section 5.2) and once with ``directory_replication_k=2``
  (the warm failover of section 5.3).  Warm must be *strictly* better on
  both replica-aware metrics: time-to-full-index and cold-window misses.

The cold/warm A/B also has a CLI front door for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --quick \
        --output results/fault_recovery_warm_failover.json

which exits non-zero when warm fails to strictly beat cold.

Always reduced scale: each test runs two full systems end-to-end (see the
ablations note in bench_ablations.py).
"""

import argparse
import json
import sys
from typing import Dict, List, Optional

try:
    from benchmarks.conftest import emit_report
except ModuleNotFoundError:  # direct script invocation (CI smoke)
    import pathlib

    _RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

    def emit_report(name: str, text: str) -> None:
        print()
        print(text)
        _RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    run_directory_recovery_experiment,
    run_experiment,
    run_recovery_experiment,
)
from repro.metrics.report import render_table
from repro.net.faults import BurstyLossSpec, MassFailureSpec, PartitionSpec
from repro.sim.clock import hours, minutes

POPULATION = 150
SEED = 17

PARTITION_START = hours(3.0)
PARTITION_HEAL = hours(5.0)


def _partition_config() -> ExperimentConfig:
    return ExperimentConfig.scaled(
        population=POPULATION,
        duration_hours=9.0,
        num_websites=8,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=60,
        fault_schedule=(
            PartitionSpec(
                locality=0, start_ms=PARTITION_START, heal_ms=PARTITION_HEAL
            ),
        ),
    )


def test_partition_and_heal_recovery(benchmark):
    config = _partition_config()

    def run():
        return {
            protocol: run_recovery_experiment(
                protocol,
                config,
                fault_start_ms=PARTITION_START,
                fault_end_ms=PARTITION_HEAL,
                seed=SEED,
                window_ms=minutes(30),
            )
            for protocol in ("flower", "squirrel")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for protocol, (result, recovery) in results.items():
        ttr = recovery.time_to_recover_ms()
        rows.append(
            [
                protocol,
                f"{recovery.pre.hit_ratio:.3f}",
                f"{recovery.during.hit_ratio:.3f}",
                f"{recovery.post.hit_ratio:.3f}",
                f"{recovery.during.availability:.1%}",
                f"{recovery.availability:.1%}",
                "never" if ttr is None else f"{ttr / 60_000.0:.0f} min",
                result.extra["drop_counts"].get("partition", 0),
            ]
        )
    emit_report(
        "fault_recovery_partition",
        render_table(
            [
                "protocol",
                "pre hit",
                "fault hit",
                "post hit",
                "fault avail",
                "avail",
                "TTR",
                "partition drops",
            ],
            rows,
            title=(
                f"partition of locality 0 "
                f"({PARTITION_START / 3_600_000.0:.0f}h-"
                f"{PARTITION_HEAL / 3_600_000.0:.0f}h), "
                f"P={config.population}, seed={SEED}"
            ),
        ),
    )

    __, flower = results["flower"]
    __, squirrel = results["squirrel"]
    # The partition actually bit: both systems dropped cross-cut traffic.
    for result, __rec in results.values():
        assert result.extra["drop_counts"].get("partition", 0) > 0
    # Flower's in-locality directories ride the cut better than the
    # single global ring on both fault-phase metrics.
    assert flower.during.availability > squirrel.during.availability
    assert flower.during.hit_ratio > squirrel.during.hit_ratio
    # And Flower comes back: the windowed hit ratio returns to within
    # epsilon of the pre-fault baseline after the heal.
    assert flower.time_to_recover_ms() is not None
    assert flower.post.availability >= 0.99


#: Gilbert-Elliott channel at 10% stationary loss (0.05 / (0.05 + 0.45)),
#: mean burst length 1 / 0.45 ~ 2.2 deliveries.
BURSTY_10PCT = BurstyLossSpec(p_good_to_bad=0.05, p_bad_to_good=0.45)


def test_retries_beat_single_shot_under_bursty_loss(benchmark):
    assert abs(BURSTY_10PCT.stationary_loss_rate - 0.10) < 1e-9
    config = ExperimentConfig.scaled(
        population=POPULATION,
        duration_hours=8.0,
        num_websites=6,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=40,
        fault_schedule=(BURSTY_10PCT,),
    )

    def run():
        return {
            "flower (retries=2)": run_experiment("flower", config, seed=4),
            "flower (single-shot)": run_experiment(
                "flower", config.replace(rpc_retries=0), seed=4
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{result.hit_ratio:.3f}",
            f"{result.mean_lookup_latency_ms:.0f} ms",
            result.extra["drop_counts"].get("loss", 0),
            result.messages_sent,
        ]
        for name, result in results.items()
    ]
    emit_report(
        "fault_recovery_bursty_loss",
        render_table(
            ["variant", "hit ratio", "lookup", "lost messages", "sent"],
            rows,
            title=(
                f"Gilbert-Elliott loss at "
                f"{BURSTY_10PCT.stationary_loss_rate:.0%} stationary rate "
                f"(P={config.population}, {config.duration_hours:.0f}h)"
            ),
        ),
    )

    retries = results["flower (retries=2)"]
    single = results["flower (single-shot)"]
    # The acceptance bar: retry/backoff strictly beats the seed's
    # single-shot RPC behaviour at the same loss rate and seed.
    assert retries.hit_ratio > single.hit_ratio
    # Retries cost extra traffic -- the win is not free.
    assert retries.messages_sent > single.messages_sent


# ---------------------------------------------------------------------------
# Cold vs warm directory failover (section 5.3 A/B)
# ---------------------------------------------------------------------------

WARM_K = 2


def _wipe_config(replication_k: int, population: int = POPULATION) -> ExperimentConfig:
    """Partition locality 0 (3h-5h) and wipe its directories mid-cut."""
    return ExperimentConfig.scaled(
        population=population,
        duration_hours=9.0,
        num_websites=8,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=60,
        directory_replication_k=replication_k,
        fault_schedule=(
            PartitionSpec(
                locality=0, start_ms=PARTITION_START, heal_ms=PARTITION_HEAL
            ),
            MassFailureSpec(
                at_ms=PARTITION_START + 0.5 * (PARTITION_HEAL - PARTITION_START),
                fraction=1.0,
                locality=0,
                directories_only=True,
            ),
        ),
    )


def run_cold_warm_ab(population: int = POPULATION, seed: int = SEED) -> Dict:
    """The cold (k=0) vs warm (k=WARM_K) directory-recovery comparison."""
    out: Dict[str, Dict] = {}
    for label, k in (("cold", 0), ("warm", WARM_K)):
        result, recovery, directory = run_directory_recovery_experiment(
            "flower",
            _wipe_config(k, population=population),
            fault_start_ms=PARTITION_START,
            fault_end_ms=PARTITION_HEAL,
            seed=seed,
            window_ms=minutes(30),
            localities=[0],
        )
        out[label] = {
            "replication_k": k,
            "hit_ratio": result.hit_ratio,
            "availability": recovery.availability,
            "fault_hit_ratio": recovery.during.hit_ratio,
            "time_to_full_index_ms": directory["time_to_full_index_ms"],
            "cold_window_misses": directory["cold_window_misses"],
            "replicas_adopted": directory["replicas_adopted"],
            "takeover_staleness_ms": directory["takeover_staleness_ms"],
            "replication": result.extra["replication"],
        }
    return out


def _ab_table(ab: Dict, population: int, seed: int) -> str:
    rows = []
    for label in ("cold", "warm"):
        entry = ab[label]
        ttfi = entry["time_to_full_index_ms"]
        rows.append(
            [
                f"{label} (k={entry['replication_k']})",
                "never" if ttfi is None else f"{ttfi / 60_000.0:.0f} min",
                entry["cold_window_misses"],
                entry["replicas_adopted"],
                f"{entry['takeover_staleness_ms']['mean'] / 60_000.0:.1f} min",
                f"{entry['fault_hit_ratio']:.3f}",
                f"{entry['availability']:.1%}",
            ]
        )
    return render_table(
        [
            "mode",
            "time to full index",
            "cold misses",
            "replicas adopted",
            "staleness (mean)",
            "fault hit",
            "avail",
        ],
        rows,
        title=(
            "cold vs warm directory failover "
            f"(partition 3h-5h + wipe, P={population}, seed={seed})"
        ),
    )


def _ab_strictly_better(ab: Dict) -> bool:
    cold, warm = ab["cold"], ab["warm"]
    cold_ttfi = cold["time_to_full_index_ms"]
    warm_ttfi = warm["time_to_full_index_ms"]
    if warm_ttfi is None:  # warm never recovered: hard fail
        return False
    if cold_ttfi is not None and warm_ttfi >= cold_ttfi:
        return False
    return warm["cold_window_misses"] < cold["cold_window_misses"]


def test_warm_failover_beats_cold_restart(benchmark):
    ab = benchmark.pedantic(run_cold_warm_ab, rounds=1, iterations=1)
    emit_report(
        "fault_recovery_warm_failover", _ab_table(ab, POPULATION, SEED)
    )
    # The section 5.3 acceptance bar: with k=2 the cold window is
    # *strictly* shorter and cheaper than the paper's cold replacement.
    assert _ab_strictly_better(ab)
    # The warm run actually used replicas (the win is attributable).
    assert ab["warm"]["replicas_adopted"] > 0
    assert ab["cold"]["replicas_adopted"] == 0
    assert ab["cold"]["replication"]["syncs"] == 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI front door: run the cold/warm A/B and write the comparison."""
    parser = argparse.ArgumentParser(
        description="cold vs warm directory failover A/B"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller population (CI smoke)"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--output", metavar="PATH", help="write the A/B comparison as JSON"
    )
    args = parser.parse_args(argv)
    population = 100 if args.quick else POPULATION
    ab = run_cold_warm_ab(population=population, seed=args.seed)
    emit_report(
        "fault_recovery_warm_failover", _ab_table(ab, population, args.seed)
    )
    ok = _ab_strictly_better(ab)
    print(
        "warm strictly beats cold: "
        + ("yes" if ok else "NO -- regression in warm failover")
    )
    if args.output:
        payload = {
            "population": population,
            "seed": args.seed,
            "warm_strictly_better": ok,
            "cold": ab["cold"],
            "warm": ab["warm"],
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
