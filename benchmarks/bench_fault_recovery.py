"""Fault recovery: partition-and-heal and bursty loss, Flower vs the seed.

The paper's robustness claim (sections 1 and 6.3) is argued through churn
alone; this bench subjects both systems to the harder faults the
fault-injection subsystem (:mod:`repro.net.faults`) provides and reports
the recovery metrics the claim implies:

- **partition and heal** -- cut locality 0 off the backbone for two
  simulated hours.  Flower-CDN's per-locality directories keep serving the
  cut locality from inside, so its availability and hit ratio degrade less
  than Squirrel's single global ring, and both numbers return to baseline
  after the heal (time-to-recover is finite);
- **bursty loss** -- a Gilbert-Elliott channel at ~10% stationary loss.
  With the retry/backoff RPC layer enabled (the default) Flower's hit
  ratio is strictly better than the seed's single-shot behaviour
  (``rpc_retries=0``) at the same loss rate and seed.

Always reduced scale: each test runs two full systems end-to-end (see the
ablations note in bench_ablations.py).
"""

from benchmarks.conftest import emit_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment, run_recovery_experiment
from repro.metrics.report import render_table
from repro.net.faults import BurstyLossSpec, PartitionSpec
from repro.sim.clock import hours, minutes

POPULATION = 150
SEED = 17

PARTITION_START = hours(3.0)
PARTITION_HEAL = hours(5.0)


def _partition_config() -> ExperimentConfig:
    return ExperimentConfig.scaled(
        population=POPULATION,
        duration_hours=9.0,
        num_websites=8,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=60,
        fault_schedule=(
            PartitionSpec(
                locality=0, start_ms=PARTITION_START, heal_ms=PARTITION_HEAL
            ),
        ),
    )


def test_partition_and_heal_recovery(benchmark):
    config = _partition_config()

    def run():
        return {
            protocol: run_recovery_experiment(
                protocol,
                config,
                fault_start_ms=PARTITION_START,
                fault_end_ms=PARTITION_HEAL,
                seed=SEED,
                window_ms=minutes(30),
            )
            for protocol in ("flower", "squirrel")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for protocol, (result, recovery) in results.items():
        ttr = recovery.time_to_recover_ms()
        rows.append(
            [
                protocol,
                f"{recovery.pre.hit_ratio:.3f}",
                f"{recovery.during.hit_ratio:.3f}",
                f"{recovery.post.hit_ratio:.3f}",
                f"{recovery.during.availability:.1%}",
                f"{recovery.availability:.1%}",
                "never" if ttr is None else f"{ttr / 60_000.0:.0f} min",
                result.extra["drop_counts"].get("partition", 0),
            ]
        )
    emit_report(
        "fault_recovery_partition",
        render_table(
            [
                "protocol",
                "pre hit",
                "fault hit",
                "post hit",
                "fault avail",
                "avail",
                "TTR",
                "partition drops",
            ],
            rows,
            title=(
                f"partition of locality 0 "
                f"({PARTITION_START / 3_600_000.0:.0f}h-"
                f"{PARTITION_HEAL / 3_600_000.0:.0f}h), "
                f"P={config.population}, seed={SEED}"
            ),
        ),
    )

    __, flower = results["flower"]
    __, squirrel = results["squirrel"]
    # The partition actually bit: both systems dropped cross-cut traffic.
    for result, __rec in results.values():
        assert result.extra["drop_counts"].get("partition", 0) > 0
    # Flower's in-locality directories ride the cut better than the
    # single global ring on both fault-phase metrics.
    assert flower.during.availability > squirrel.during.availability
    assert flower.during.hit_ratio > squirrel.during.hit_ratio
    # And Flower comes back: the windowed hit ratio returns to within
    # epsilon of the pre-fault baseline after the heal.
    assert flower.time_to_recover_ms() is not None
    assert flower.post.availability >= 0.99


#: Gilbert-Elliott channel at 10% stationary loss (0.05 / (0.05 + 0.45)),
#: mean burst length 1 / 0.45 ~ 2.2 deliveries.
BURSTY_10PCT = BurstyLossSpec(p_good_to_bad=0.05, p_bad_to_good=0.45)


def test_retries_beat_single_shot_under_bursty_loss(benchmark):
    assert abs(BURSTY_10PCT.stationary_loss_rate - 0.10) < 1e-9
    config = ExperimentConfig.scaled(
        population=POPULATION,
        duration_hours=8.0,
        num_websites=6,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=40,
        fault_schedule=(BURSTY_10PCT,),
    )

    def run():
        return {
            "flower (retries=2)": run_experiment("flower", config, seed=4),
            "flower (single-shot)": run_experiment(
                "flower", config.replace(rpc_retries=0), seed=4
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{result.hit_ratio:.3f}",
            f"{result.mean_lookup_latency_ms:.0f} ms",
            result.extra["drop_counts"].get("loss", 0),
            result.messages_sent,
        ]
        for name, result in results.items()
    ]
    emit_report(
        "fault_recovery_bursty_loss",
        render_table(
            ["variant", "hit ratio", "lookup", "lost messages", "sent"],
            rows,
            title=(
                f"Gilbert-Elliott loss at "
                f"{BURSTY_10PCT.stationary_loss_rate:.0%} stationary rate "
                f"(P={config.population}, {config.duration_hours:.0f}h)"
            ),
        ),
    )

    retries = results["flower (retries=2)"]
    single = results["flower (single-shot)"]
    # The acceptance bar: retry/backoff strictly beats the seed's
    # single-shot RPC behaviour at the same loss rate and seed.
    assert retries.hit_ratio > single.hit_ratio
    # Retries cost extra traffic -- the win is not free.
    assert retries.messages_sent > single.messages_sent
