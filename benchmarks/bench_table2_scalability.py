"""Table 2: scalability sweep over the population size.

Paper's rows (P = 2000..5000):

    P     approach    hit ratio  lookup    transfer
    2000  Squirrel    0.35       1503 ms   163 ms
          Flower-CDN  0.63        167 ms   120 ms
    3000  Squirrel    0.41       1544 ms   166 ms
          Flower-CDN  0.68        152 ms    92 ms
    4000  Squirrel    0.45       1596 ms   169 ms
          Flower-CDN  0.70        138 ms    88 ms
    5000  Squirrel    0.52       1596 ms   165 ms
          Flower-CDN  0.72        127 ms    81 ms

Findings to reproduce in shape: Flower-CDN wins on every metric at every
scale; larger populations *help* Flower (bigger petals -> higher hit ratio,
shorter lookups) while Squirrel's lookup latency slowly grows with the
ring size.
"""

from benchmarks.conftest import TABLE2_POPULATIONS, bench_config, emit_report
from repro.metrics.report import render_table


def test_table2_scalability(benchmark, experiments):
    def run():
        results = {}
        for population in TABLE2_POPULATIONS:
            config = bench_config(population)
            results[population] = (
                experiments.get("squirrel", config),
                experiments.get("flower", config),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for population, (squirrel, flower) in results.items():
        rows.append(
            [
                population,
                "Squirrel",
                f"{squirrel.hit_ratio:.2f}",
                f"{squirrel.mean_lookup_latency_ms:.0f} ms",
                f"{squirrel.mean_transfer_ms:.0f} ms",
            ]
        )
        rows.append(
            [
                "",
                "Flower-CDN",
                f"{flower.hit_ratio:.2f}",
                f"{flower.mean_lookup_latency_ms:.0f} ms",
                f"{flower.mean_transfer_ms:.0f} ms",
            ]
        )
    largest = TABLE2_POPULATIONS[-1]
    squirrel_l, flower_l = results[largest]
    factor_lookup = squirrel_l.mean_lookup_latency_ms / max(
        flower_l.mean_lookup_latency_ms, 1e-9
    )
    factor_transfer = squirrel_l.mean_transfer_ms / max(
        flower_l.mean_transfer_ms, 1e-9
    )
    emit_report(
        "table2_scalability",
        render_table(
            ["P", "approach", "hit ratio", "lookup", "transfer"],
            rows,
            title="Table 2 -- scalability (Flower-CDN vs Squirrel)",
        )
        + (
            f"\nimprovement factors at P={largest}: "
            f"lookup {factor_lookup:.1f}x, transfer {factor_transfer:.1f}x "
            f"(paper: up to 12.6x and 2x)"
        ),
    )

    smallest = TABLE2_POPULATIONS[0]
    squirrel_s, flower_s = results[smallest]
    # Who wins: Flower on every metric at every population.
    for population, (squirrel, flower) in results.items():
        assert flower.hit_ratio > squirrel.hit_ratio, population
        assert flower.mean_lookup_latency_ms < squirrel.mean_lookup_latency_ms
        assert flower.mean_transfer_ms < squirrel.mean_transfer_ms
    # Scale trend: larger populations help Flower's hit ratio.
    assert flower_l.hit_ratio >= flower_s.hit_ratio - 0.02
    # Crossover factors: the lookup gap is the dominant one.
    assert factor_lookup > factor_transfer
