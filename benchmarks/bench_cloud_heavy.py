"""Cloud-heavy overload: open-loop saturation and replica-aware shedding A/B.

The paper's workload (Table 1) is closed-loop, so its directories can
never saturate: queueing delay throttles the clients and overload is
unobservable by construction.  This bench drives both PetalUp arms with
the *open-loop* arrival process (:mod:`repro.workload.openloop`) -- a
Poisson base rate with a diurnal cycle, doubled by a sustained
regionally-correlated flash crowd -- against bounded directory admission
queues, and compares how the two overload strategies degrade:

- **cold** (``k=0``, ``overload_shedding=False``) -- the paper's pure
  section 4 behaviour: a full queue sheds with no redirect hint, splits
  are triggered only by the member-count test, and every split seeds an
  *empty* instance that clients must discover through the serial
  instance scan;
- **warm** (``k=WARM_K``, ``overload_shedding=True``) -- the overload
  extension: queue-pressure sheds carry a redirect to the successor
  instance, splits seed the new instance with half the member partition
  (so it is warm from its first admitted query), and an overloaded
  instance sheds members directly to its successor instead of waiting
  for the scan to rebalance them.

Reported per arm: pre-overload vs overload-window lookup-latency
percentiles (p50/p99/p999 over remotely-resolved queries -- local cache
hits are free and would drown the tail), queue/shed counters, terminal
accounting, and the Gini coefficient of per-directory query load
(:func:`repro.metrics.gini`).

The acceptance gates (ISSUE 8):

- warm shows **no scan-latency cliff**: overload-window p99 stays within
  2x its own pre-overload p99;
- **every** query is terminally accounted in both arms: sheds included,
  no ledger entry left open at the horizon beyond a short in-flight
  grace for queries issued just before the cut-off;
- warm spreads directory load **more evenly**: strictly lower Gini than
  cold.

CLI front door for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_cloud_heavy.py --quick \
        --output results/cloud_heavy_overload.json

which exits non-zero when any gate fails.

Always reduced scale: each A/B runs two full systems end-to-end (see the
ablations note in bench_ablations.py).
"""

import argparse
import json
import sys
from typing import Dict, List, Optional

try:
    from benchmarks.conftest import emit_report
except ModuleNotFoundError:  # direct script invocation (CI smoke)
    import pathlib

    _RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

    def emit_report(name: str, text: str) -> None:
        print()
        print(text)
        _RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.metrics.collector import SERVED_OUTCOMES
from repro.metrics.distribution import Distribution
from repro.metrics.loadbalance import gini
from repro.metrics.report import render_table
from repro.sim.clock import hours, minutes

POPULATION = 180
SEED = 17
WARM_K = 2

DURATION_HOURS = 6.0
#: The sustained flash crowd: ramps over 10 minutes at the 3 h mark to
#: double the offered load, then decays so slowly (50 h constant) that
#: the rest of the run is effectively a 2x plateau.
SURGE_START = hours(3.0)
SURGE_RAMP = minutes(10.0)
SURGE_PEAK = 2.0
SURGE_DECAY = hours(50.0)

#: Measurement windows: [1 h, surge start) is the steady pre-overload
#: baseline (the first hour is bootstrap noise), [ramp end, horizon] is
#: the sustained-overload window.
PRE_WINDOW = (hours(1.0), SURGE_START)
OVERLOAD_WINDOW = (SURGE_START + SURGE_RAMP, hours(DURATION_HOURS))

#: Latency percentiles cover queries that actually left the peer; local
#: cache hits cost nothing and would bury the directory-path tail.
REMOTE_OUTCOMES = frozenset(SERVED_OUTCOMES - {"hit_local"})

#: A ledger entry still open at the horizon is only a leak if the query
#: had time to terminate: anything issued within this grace of the
#: cut-off is legitimately in flight (the open-loop process issues
#: queries up to the very last tick).  Two minutes comfortably covers
#: the worst case -- a full instance scan with RPC retries plus the
#: maximum queue wait.
ACCOUNTING_GRACE = minutes(2.0)


def _overload_config(
    replication_k: int,
    shedding: bool,
    population: int = POPULATION,
    hints: bool = False,
    rebalance: bool = False,
) -> ExperimentConfig:
    return ExperimentConfig.scaled(
        population=population,
        duration_hours=DURATION_HOURS,
        num_websites=6,
        num_active_websites=2,
        num_localities=2,
        # A catalog several times the per-peer cache: open-loop repeats
        # keep missing, so directories see sustained query pressure.
        objects_per_website=120,
        peer_cache_capacity=15,
        directory_replication_k=replication_k,
        directory_load_limit=12,
        max_instances=8,
        openloop_rate_qps=population / 6.0,
        openloop_diurnal_amplitude=0.25,
        openloop_surges=(
            (SURGE_START, SURGE_RAMP, SURGE_PEAK, SURGE_DECAY, 0, -1, 0.9),
        ),
        directory_queue_limit=6,
        directory_service_ms=400.0,
        overload_shedding=shedding,
        redirect_hints=hints,
        rebalance=rebalance,
        # Reactive-arm operating point: sweeps tick hourly, so a non-zero
        # cooldown would leave each pressured directory a single spill
        # pass inside the 3h overload window.  Spill every pressured
        # sweep, wide enough (32 keys) to cover the hot set -- the petals
        # hold ~P/4 members each, so narrower passes dilute into the
        # zero-fetch tail and the window Gini barely moves.
        rebalance_cooldown_rounds=0,
        rebalance_max_keys=32,
        rebalance_budget_kb=8192.0,
    )


def _window_percentiles(records, window) -> Dict:
    lo, hi = window
    values = Distribution(
        [
            r.lookup_latency_ms
            for r in records
            if lo <= r.time < hi and r.outcome in REMOTE_OUTCOMES
        ]
    )
    return {
        "count": len(values),
        "p50": values.percentile(50.0),
        "p99": values.percentile(99.0),
        "p999": values.percentile(99.9),
    }


#: A petal must carry at least this share of the overload-window query
#: traffic for its instances to enter the balance Gini: petals of
#: inactive websites see members-only trickle and would otherwise drown
#: the comparison in structural (active-vs-inactive) inequality neither
#: strategy controls.
_ACTIVE_PETAL_SHARE = 0.01


def _window_loads(detail: Dict, baseline: Dict) -> List[float]:
    """Per-instance overload-window query counts over the loaded petals.

    A counter below its window-start snapshot means the peer demoted and
    re-promoted mid-window (the role restarts its counters), so the full
    current count is window traffic.
    """
    windowed = {}
    for address, entry in detail.items():
        count = entry["queries"] - baseline.get(address, 0)
        if count < 0:
            count = entry["queries"]
        windowed[address] = (entry["website"], entry["locality"], count)
    petal_totals: Dict = {}
    for website, locality, count in windowed.values():
        petal = (website, locality)
        petal_totals[petal] = petal_totals.get(petal, 0) + count
    floor = _ACTIVE_PETAL_SHARE * sum(petal_totals.values())
    return [
        float(count)
        for website, locality, count in windowed.values()
        if petal_totals[(website, locality)] >= floor
    ]


def _window_fetches(detail: Dict, baseline: Dict) -> List[float]:
    """Per-content-peer overload-window fetch counts (content Gini input).

    Same snapshot-diff convention as :func:`_window_loads`, and the same
    loaded-petal scoping: peers of petals that saw no meaningful
    overload-window fetch traffic (inactive websites, un-surged
    localities) would otherwise drown the comparison in structural
    inequality neither strategy controls.
    """
    windowed = {}
    for address, entry in detail.items():
        count = entry["fetches"] - baseline.get(address, 0)
        if count < 0:
            count = entry["fetches"]
        windowed[address] = (entry["website"], entry["locality"], count)
    petal_totals: Dict = {}
    for website, locality, count in windowed.values():
        petal = (website, locality)
        petal_totals[petal] = petal_totals.get(petal, 0) + count
    floor = _ACTIVE_PETAL_SHARE * sum(petal_totals.values())
    return [
        float(count)
        for website, locality, count in windowed.values()
        if petal_totals[(website, locality)] >= floor
    ]


def _run_arm(
    replication_k: int,
    shedding: bool,
    population: int,
    seed: int,
    hints: bool = False,
    rebalance: bool = False,
) -> Dict:
    config = _overload_config(
        replication_k,
        shedding,
        population=population,
        hints=hints,
        rebalance=rebalance,
    )
    world = build_world("petalup", config, seed)
    system = world.system
    # Snapshot cumulative per-directory query counts (and per-peer
    # content fetches) as the overload window opens; the end-of-run diff
    # gives each instance's/peer's share of the overload-window traffic
    # (the Gini inputs).
    baseline_counts: Dict = {}
    baseline_fetches: Dict = {}

    def _capture_baseline() -> None:
        snapshot = system.stats().overload
        for address, detail in snapshot.directory_detail.items():
            baseline_counts[address] = detail["queries"]
        for address, detail in snapshot.content_detail.items():
            baseline_fetches[address] = detail["fetches"]

    world.sim.schedule(OVERLOAD_WINDOW[0], _capture_baseline)
    world.run()
    records = system.metrics.records
    pre = _window_percentiles(records, PRE_WINDOW)
    over = _window_percentiles(records, OVERLOAD_WINDOW)
    overload = system.stats().overload.to_dict()
    # Terminal accounting: every query old enough to have terminated must
    # have closed its ledger entry by the horizon (crash sweeps and sheds
    # both count as closed); queries issued within the grace of the
    # cut-off are legitimately still in flight.
    cutoff = hours(DURATION_HOURS) - ACCOUNTING_GRACE
    open_at_end = 0
    stale_open = 0
    for peer in system.peers.values():
        for started_at in peer._open_queries.values():
            open_at_end += 1
            if started_at < cutoff:
                stale_open += 1
    issued = len(records) + stale_open
    return {
        "replication_k": replication_k,
        "overload_shedding": shedding,
        "redirect_hints": hints,
        "rebalance": rebalance,
        "pre": pre,
        "overload": over,
        "p99_ratio": (over["p99"] / pre["p99"]) if pre["p99"] > 0 else 0.0,
        "queries": len(records),
        "open_at_end": open_at_end,
        "stale_open": stale_open,
        "accounted_fraction": len(records) / issued if issued else 1.0,
        "hit_ratio": system.metrics.hit_ratio(),
        "shed_queries": system.metrics.sheds,
        "directory_sheds": overload["queries_shed"],
        "members_shed": overload["members_shed"],
        "peak_queue_depth": overload["peak_queue_depth"],
        "directories": overload["directories"],
        "instances": overload["instances"],
        # Directory load for the balance gate = each instance's share of
        # the *overload-window* query traffic, over the petals that
        # carried it.  Cumulative counts and end-of-run member counts
        # are poor gates: instances spawned mid-run are structurally
        # behind on the former, and keepalive migration equalizes the
        # latter long after the damage is done.
        "hint_hops": overload["hint_hops"],
        "hint_hits": overload["hint_hits"],
        "hint_stale": overload["hint_stale"],
        "rebalance_spills": overload["rebalance_spills"],
        "rebalance_adoptions": overload["rebalance_adoptions"],
        "rebalance_kb": overload["rebalance_kb"],
        "gini_directory_load": gini(
            _window_loads(overload["directory_detail"], baseline_counts)
        ),
        "gini_directory_members": gini(overload["directory_loads"]),
        "gini_directory_queries": gini(overload["directory_queries"]),
        "gini_content_load": gini(overload["content_fetches"]),
        "gini_content_window": gini(
            _window_fetches(overload["content_detail"], baseline_fetches)
        ),
        "openloop": dict(world.openloop.stats),
    }


def run_cold_warm_ab(population: int = POPULATION, seed: int = SEED) -> Dict:
    """The cold (pure section 4) vs warm (replica-aware) overload A/B."""
    return {
        "cold": _run_arm(0, False, population, seed),
        "warm": _run_arm(WARM_K, True, population, seed),
    }


def run_rebalance_ab(population: int = POPULATION, seed: int = SEED) -> Dict:
    """The warm vs warm+hints+rebalance (reactive overload) A/B."""
    return {
        "warm": _run_arm(WARM_K, True, population, seed),
        "rebalance": _run_arm(
            WARM_K, True, population, seed, hints=True, rebalance=True
        ),
    }


def _ab_table(ab: Dict, population: int, seed: int) -> str:
    rows = []
    for label in ("cold", "warm"):
        entry = ab[label]
        rows.append(
            [
                f"{label} (k={entry['replication_k']})",
                f"{entry['pre']['p99']:.0f} ms",
                f"{entry['overload']['p99']:.0f} ms",
                f"{entry['p99_ratio']:.2f}x",
                entry["shed_queries"],
                entry["members_shed"],
                entry["peak_queue_depth"],
                f"{entry['gini_directory_load']:.3f}",
                f"{entry['accounted_fraction']:.1%}",
                f"{entry['hit_ratio']:.3f}",
            ]
        )
    return render_table(
        [
            "mode",
            "pre p99",
            "overload p99",
            "p99 ratio",
            "shed",
            "members shed",
            "peak depth",
            "dir Gini",
            "accounted",
            "hit ratio",
        ],
        rows,
        title=(
            f"sustained {SURGE_PEAK:.0f}x overload from "
            f"{SURGE_START / 3_600_000.0:.0f}h "
            f"(P={population}, seed={seed}, queue=6, service=400ms)"
        ),
    )


def _ab_acceptable(ab: Dict) -> bool:
    """The ISSUE 8 acceptance gates, all three at once."""
    cold, warm = ab["cold"], ab["warm"]
    # No scan-latency cliff under replica-aware shedding.
    if warm["overload"]["p99"] > 2.0 * warm["pre"]["p99"]:
        return False
    # Every query terminally accounted, in both arms: nothing open at
    # the horizon beyond the in-flight grace.
    if cold["stale_open"] != 0 or warm["stale_open"] != 0:
        return False
    # Replica-aware shedding spreads directory load more evenly.
    return warm["gini_directory_load"] < cold["gini_directory_load"]


def _rebalance_table(ab: Dict, population: int, seed: int) -> str:
    rows = []
    for label in ("warm", "rebalance"):
        entry = ab[label]
        rows.append(
            [
                label,
                f"{entry['overload']['p99']:.0f} ms",
                entry["directory_sheds"],
                entry["hint_hops"],
                entry["hint_hits"],
                entry["hint_stale"],
                entry["rebalance_spills"],
                entry["rebalance_adoptions"],
                f"{entry['gini_content_window']:.3f}",
                f"{entry['accounted_fraction']:.1%}",
            ]
        )
    return render_table(
        [
            "mode",
            "overload p99",
            "dir sheds",
            "hint hops",
            "hint hits",
            "stale",
            "spills",
            "adoptions",
            "content Gini",
            "accounted",
        ],
        rows,
        title=(
            f"warm vs hints+rebalance under sustained {SURGE_PEAK:.0f}x "
            f"overload (P={population}, seed={seed})"
        ),
    )


def _rebalance_acceptable(ab: Dict) -> bool:
    """The ISSUE 10 acceptance gates for the reactive (third) arm."""
    warm, reb = ab["warm"], ab["rebalance"]
    # Rebalancing spreads overload-window content serving more evenly.
    if reb["gini_content_window"] >= warm["gini_content_window"]:
        return False
    # Hint pre-routing plus extra holders reduce admission-queue sheds.
    if reb["directory_sheds"] >= warm["directory_sheds"]:
        return False
    # ...without giving the tail back: overload p99 no worse than warm.
    if reb["overload"]["p99"] > warm["overload"]["p99"]:
        return False
    # And the ledger still closes: nothing stale-open, in either arm.
    return warm["stale_open"] == 0 and reb["stale_open"] == 0


def test_replica_aware_shedding_beats_section4_scan(benchmark):
    ab = benchmark.pedantic(run_cold_warm_ab, rounds=1, iterations=1)
    emit_report("cloud_heavy_overload", _ab_table(ab, POPULATION, SEED))
    # The overload actually bit: queries were shed in both arms.
    assert ab["cold"]["shed_queries"] > 0
    assert ab["warm"]["shed_queries"] > 0
    # The warm win is attributable: members moved without a scan.
    assert ab["warm"]["members_shed"] > 0
    assert ab["cold"]["members_shed"] == 0
    assert _ab_acceptable(ab)


def test_hints_and_rebalance_act_on_the_gini(benchmark):
    ab = benchmark.pedantic(run_rebalance_ab, rounds=1, iterations=1)
    emit_report("cloud_heavy_rebalance", _rebalance_table(ab, POPULATION, SEED))
    # The reactive arm actually reacted: hints routed, spills adopted.
    assert ab["rebalance"]["hint_hops"] > 0
    assert ab["rebalance"]["rebalance_adoptions"] > 0
    # The warm arm never pays for machinery it did not enable.
    assert ab["warm"]["hint_hops"] == 0
    assert ab["warm"]["rebalance_spills"] == 0
    assert _rebalance_acceptable(ab)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI front door: run the overload arms and write the comparisons."""
    parser = argparse.ArgumentParser(
        description="sustained-overload cold vs warm vs rebalance A/B"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller population (CI smoke)"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--output", metavar="PATH", help="write the A/B comparison as JSON"
    )
    parser.add_argument(
        "--output-rebalance",
        metavar="PATH",
        help="write the warm vs rebalance comparison as JSON",
    )
    args = parser.parse_args(argv)
    population = 120 if args.quick else POPULATION
    # Three arms, the warm one shared between both comparisons.
    cold = _run_arm(0, False, population, args.seed)
    warm = _run_arm(WARM_K, True, population, args.seed)
    reactive = _run_arm(
        WARM_K, True, population, args.seed, hints=True, rebalance=True
    )
    ab = {"cold": cold, "warm": warm}
    reb_ab = {"warm": warm, "rebalance": reactive}
    table = _ab_table(ab, population, args.seed)
    reb_table = _rebalance_table(reb_ab, population, args.seed)
    if args.quick:
        # Don't clobber the committed full-scale artifacts with a smoke run.
        print(table)
        print(reb_table)
    else:
        emit_report("cloud_heavy_overload", table)
        emit_report("cloud_heavy_rebalance", reb_table)
    ok = _ab_acceptable(ab)
    reb_ok = _rebalance_acceptable(reb_ab)
    print(
        "overload gates (p99 cliff / accounting / Gini): "
        + ("all pass" if ok else "FAIL -- regression in overload handling")
    )
    print(
        "rebalance gates (content Gini / sheds / p99 / accounting): "
        + ("all pass" if reb_ok else "FAIL -- reactive arm regressed")
    )
    if args.output:
        payload = {
            "population": population,
            "seed": args.seed,
            "gates_pass": ok,
            "cold": cold,
            "warm": warm,
            "rebalance": reactive,
            "rebalance_gates_pass": reb_ok,
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.output}")
    if args.output_rebalance:
        payload = {
            "population": population,
            "seed": args.seed,
            "gates_pass": reb_ok,
            "warm": warm,
            "rebalance": reactive,
        }
        with open(args.output_rebalance, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.output_rebalance}")
    return 0 if ok and reb_ok else 1


if __name__ == "__main__":
    sys.exit(main())
