"""Search availability under directory wipe: the cold-vs-warm A/B.

PR 4/5 made directory *content service* survive a wipe through replicated
(member-view, index) state; this bench shows the same replication channel
now carries the keyword-search plane (section 5.4 of docs/PROTOCOLS.md).
One scenario, two arms:

- **cold (k=0)** -- no replicated posting lists.  A partition cuts
  locality 0 off the backbone (3h-5h) and every directory inside the cut
  is wiped at 4h.  Keyword searches issued by locality-0 members have
  nowhere to go: the wipe window shows a sustained outage ("none"
  completions).
- **warm (k=2)** -- posting lists replicate to the member heir plus two
  D-ring successors.  Through the same wipe, searches fail over to
  replica holders (staleness-stamped), then to promoted takeover /
  provisional directories; availability in the wipe window stays >= 99%
  and no replica-served answer exceeds the declared staleness bound of
  :func:`repro.cdn.flower.search.staleness_bound_ms`.

CLI front door (CI smoke; exits non-zero when the warm gate fails)::

    PYTHONPATH=src python benchmarks/bench_search_availability.py \
        --output results/search_availability_warm.json

Always reduced scale: each arm runs a full system end-to-end (see the
ablations note in bench_ablations.py).
"""

import argparse
import json
import sys
from typing import Dict, List, Optional

try:
    from benchmarks.conftest import emit_report
except ModuleNotFoundError:  # direct script invocation (CI smoke)
    import pathlib

    _RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

    def emit_report(name: str, text: str) -> None:
        print()
        print(text)
        _RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


from repro.cdn.flower.search import SearchAvailabilityTracker, staleness_bound_ms
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_world
from repro.metrics.report import render_table
from repro.net.faults import MassFailureSpec, PartitionSpec
from repro.sim.clock import hours, minutes

POPULATION = 150
SEED = 17
WARM_K = 2

PARTITION_START = hours(3.0)
PARTITION_HEAL = hours(5.0)
WIPE_AT = PARTITION_START + 0.5 * (PARTITION_HEAL - PARTITION_START)
#: The measured outage window: wipe -> wipe + 30 min.
WINDOW_MS = minutes(30.0)

#: The warm acceptance bar inside the wipe window.
WARM_AVAILABILITY_FLOOR = 0.99
#: The cold arm must show a real outage (otherwise the A/B proves nothing).
COLD_AVAILABILITY_CEILING = 0.5


def _wipe_config(replication_k: int, population: int = POPULATION) -> ExperimentConfig:
    """Partition locality 0 (3h-5h), wipe its directories mid-cut, and
    probe keyword search inside the cut locality throughout.

    The 10-minute keepalive cadence (vs the paper's 1h default) keeps the
    replica-sync period meaningfully shorter than the mean peer uptime --
    at a 1h cadence most directories die before their first sync and
    there is no warm state to measure.
    """
    return ExperimentConfig.scaled(
        population=population,
        duration_hours=9.0,
        num_websites=8,
        num_active_websites=2,
        num_localities=3,
        objects_per_website=60,
        gossip_period_min=10.0,
        directory_replication_k=replication_k,
        search_keywords=24,
        search_probe_period_s=45.0,
        fault_schedule=(
            PartitionSpec(
                locality=0, start_ms=PARTITION_START, heal_ms=PARTITION_HEAL
            ),
            MassFailureSpec(
                at_ms=WIPE_AT,
                fraction=1.0,
                locality=0,
                directories_only=True,
            ),
        ),
    )


def run_search_availability_ab(
    population: int = POPULATION, seed: int = SEED
) -> Dict:
    """The cold (k=0) vs warm (k=WARM_K) search-availability comparison."""
    out: Dict[str, Dict] = {}
    for label, k in (("cold", 0), ("warm", WARM_K)):
        config = _wipe_config(k, population=population)
        world = build_world("flower", config, seed=seed)
        # Focus the probe workload on the cut locality: that is where the
        # availability question is decided.
        world.search_probes.localities = [0]
        tracker = SearchAvailabilityTracker(world.sim)
        world.run()
        window = tracker.window_stats(WIPE_AT, WIPE_AT + WINDOW_MS)
        full = tracker.window_stats(0.0, world.sim.now)
        out[label] = {
            "replication_k": k,
            "staleness_bound_ms": staleness_bound_ms(world.system.params),
            "window": window,
            "full_run": full,
            "probes_issued": world.search_probes.issued,
            "replication": world.system.stats().replication.to_dict(),
        }
    return out


def _ab_table(ab: Dict, population: int, seed: int) -> str:
    rows = []
    for label in ("cold", "warm"):
        entry = ab[label]
        window = entry["window"]
        full = entry["full_run"]
        rows.append(
            [
                f"{label} (k={entry['replication_k']})",
                f"{window['answered']}/{window['issued']}",
                f"{window['availability']:.1%}",
                window["by_source"].get("none", 0),
                window["replica_served"],
                f"{full['max_replica_staleness_ms'] / 60_000.0:.1f} min",
                f"{full['availability']:.1%}",
            ]
        )
    return render_table(
        [
            "mode",
            "answered (wipe+30m)",
            "avail",
            "outages",
            "via replica",
            "max staleness",
            "run avail",
        ],
        rows,
        title=(
            "search availability through a directory wipe "
            f"(partition 3h-5h + wipe at 4h, P={population}, seed={seed})"
        ),
    )


def _gates_pass(ab: Dict) -> List[str]:
    """All failed acceptance gates (empty = the A/B holds)."""
    failures = []
    cold, warm = ab["cold"], ab["warm"]
    if warm["window"]["availability"] < WARM_AVAILABILITY_FLOOR:
        failures.append(
            f"warm wipe-window availability "
            f"{warm['window']['availability']:.3f} < {WARM_AVAILABILITY_FLOOR}"
        )
    if cold["window"]["availability"] > COLD_AVAILABILITY_CEILING:
        failures.append(
            f"cold wipe-window availability "
            f"{cold['window']['availability']:.3f} > {COLD_AVAILABILITY_CEILING} "
            "(no outage to recover from)"
        )
    for label in ("cold", "warm"):
        entry = ab[label]
        stale = entry["full_run"]["max_replica_staleness_ms"]
        if stale > entry["staleness_bound_ms"]:
            failures.append(
                f"{label}: replica staleness {stale:.0f} ms beyond the "
                f"declared bound {entry['staleness_bound_ms']:.0f} ms"
            )
    if warm["full_run"]["replica_served"] < 1:
        failures.append("warm arm never served a search from a replica")
    if cold["full_run"]["replica_served"] != 0:
        failures.append("cold arm served searches from replicas at k=0")
    return failures


def test_replicated_search_survives_directory_wipe(benchmark):
    ab = benchmark.pedantic(
        run_search_availability_ab, rounds=1, iterations=1
    )
    emit_report(
        "search_availability_warm", _ab_table(ab, POPULATION, SEED)
    )
    assert _gates_pass(ab) == []


def main(argv: Optional[List[str]] = None) -> int:
    """CLI front door: run the cold/warm A/B and write the comparison."""
    parser = argparse.ArgumentParser(
        description="search availability under directory wipe (cold vs warm)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller population (local smoke)"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--output", metavar="PATH", help="write the A/B comparison as JSON"
    )
    args = parser.parse_args(argv)
    population = 100 if args.quick else POPULATION
    ab = run_search_availability_ab(population=population, seed=args.seed)
    emit_report(
        "search_availability_warm", _ab_table(ab, population, args.seed)
    )
    failures = _gates_pass(ab)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
    else:
        print("all search-availability gates hold")
    if args.output:
        payload = {
            "population": population,
            "seed": args.seed,
            "warm_availability_floor": WARM_AVAILABILITY_FLOOR,
            "cold_availability_ceiling": COLD_AVAILABILITY_CEILING,
            "gates_failed": failures,
            "ab": ab,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
